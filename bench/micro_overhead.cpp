// Micro-benchmarks (google-benchmark) for the Table 2 "Overhead" rows: the
// real CPU cost of one replicator/selector operation versus a plain FIFO,
// plus the cost of the design-time analyses.
//
// The paper reports the framework's runtime overhead as <= 0.02% of the
// application period; these benchmarks measure the arbitration-path cost in
// nanoseconds so the claim can be checked against any period.
#include <benchmark/benchmark.h>

#include "apps/mjpeg/app.hpp"
#include "apps/common/generators.hpp"
#include "apps/mjpeg/jpeg_codec.hpp"
#include "ft/nreplica.hpp"
#include "ft/replicator.hpp"
#include "ft/selector.hpp"
#include "kpn/channel.hpp"
#include "rtc/gpc.hpp"
#include "rtc/sizing.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace sccft;

kpn::Token small_token() {
  return kpn::Token(std::vector<std::uint8_t>(64, 0xAB), 0, 0);
}

void BM_PlainFifoWriteRead(benchmark::State& state) {
  sim::Simulator sim;
  kpn::FifoChannel fifo(sim, "f", 8);
  const auto token = small_token();
  std::uint64_t seq = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fifo.try_write(token.restamped(seq++, 0)));
    benchmark::DoNotOptimize(fifo.try_read());
  }
}
BENCHMARK(BM_PlainFifoWriteRead);

void BM_ReplicatorWriteBothReads(benchmark::State& state) {
  sim::Simulator sim;
  ft::ReplicatorChannel replicator(sim, "rep", {4, 4, std::nullopt, std::nullopt});
  auto& r1 = replicator.read_interface(ft::ReplicaIndex::kReplica1);
  auto& r2 = replicator.read_interface(ft::ReplicaIndex::kReplica2);
  const auto token = small_token();
  std::uint64_t seq = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(replicator.try_write(token.restamped(seq++, 0)));
    benchmark::DoNotOptimize(r1.try_read());
    benchmark::DoNotOptimize(r2.try_read());
  }
}
BENCHMARK(BM_ReplicatorWriteBothReads);

void BM_SelectorPairArbitration(benchmark::State& state) {
  sim::Simulator sim;
  ft::SelectorChannel selector(
      sim, "sel",
      {.capacity1 = 8, .capacity2 = 8, .initial1 = 2, .initial2 = 2,
       .divergence_threshold = 1'000'000,
       .link1 = std::nullopt,
       .link2 = std::nullopt});
  auto& w1 = selector.write_interface(ft::ReplicaIndex::kReplica1);
  auto& w2 = selector.write_interface(ft::ReplicaIndex::kReplica2);
  const auto token = small_token();
  std::uint64_t seq = 0;
  for (auto _ : state) {
    // One duplicate pair: enqueue + drop + consumer read.
    benchmark::DoNotOptimize(w1.try_write(token.restamped(seq, 0)));
    benchmark::DoNotOptimize(w2.try_write(token.restamped(seq, 0)));
    benchmark::DoNotOptimize(selector.try_read());
    ++seq;
  }
}
BENCHMARK(BM_SelectorPairArbitration);

void BM_PjdCurveEvaluation(benchmark::State& state) {
  rtc::PJDUpperCurve upper(rtc::PJD::from_ms(30, 5, 30));
  rtc::TimeNs t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(upper.value_at(t));
    t = (t + 1'000'003) % rtc::from_ms(500.0);
  }
}
BENCHMARK(BM_PjdCurveEvaluation);

void BM_FullSizingAnalysis(benchmark::State& state) {
  const auto app = apps::mjpeg::make_application();
  const auto model = app.timing.to_model();
  const auto horizon = app.timing.default_horizon();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rtc::analyze_duplicated_network(model, horizon));
  }
}
BENCHMARK(BM_FullSizingAnalysis)->Unit(benchmark::kMicrosecond);

void BM_DetectionLatencyBound(benchmark::State& state) {
  rtc::PJDLowerCurve lower(rtc::PJD::from_ms(30, 30, 30));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rtc::detection_latency_bound_silence(lower, 4, rtc::from_ms(3000.0)));
  }
}
BENCHMARK(BM_DetectionLatencyBound)->Unit(benchmark::kMicrosecond);

void BM_NReplicaSelectorArbitration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Simulator sim;
  ft::NSelectorChannel selector(
      sim, "nsel",
      {std::vector<rtc::Tokens>(n, 8), std::vector<rtc::Tokens>(n, 2), 1'000'000,
       true});
  const auto token = small_token();
  std::uint64_t seq = 0;
  for (auto _ : state) {
    for (std::size_t r = 0; r < n; ++r) {
      benchmark::DoNotOptimize(selector.write_interface(static_cast<int>(r))
                                   .try_write(token.restamped(seq, 0)));
    }
    benchmark::DoNotOptimize(selector.try_read());
    ++seq;
  }
}
BENCHMARK(BM_NReplicaSelectorArbitration)->Arg(2)->Arg(3)->Arg(4);

void BM_MjpegEncodeFrame(benchmark::State& state) {
  const auto frame = apps::generate_frame(320, 240, 1, 2014);
  for (auto _ : state) {
    benchmark::DoNotOptimize(apps::mjpeg::encode_frame(frame, 75));
  }
}
BENCHMARK(BM_MjpegEncodeFrame)->Unit(benchmark::kMillisecond);

void BM_GpcAnalysis(benchmark::State& state) {
  rtc::PJDUpperCurve upper(rtc::PJD::from_ms(10, 5, 10));
  rtc::PJDLowerCurve lower(rtc::PJD::from_ms(10, 5, 10));
  rtc::RateLatencyCurve service(rtc::from_ms(4.0), rtc::from_ms(2.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rtc::gpc_analyze(upper, lower, service, rtc::from_ms(500.0)));
  }
}
BENCHMARK(BM_GpcAnalysis)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
