// Micro-benchmarks (google-benchmark) for the Table 2 "Overhead" rows: the
// real CPU cost of one replicator/selector operation versus a plain FIFO,
// plus the cost of the design-time analyses and of the trace spine itself
// (per-emit cost with no subscriber / ring buffer / CSV sink).
//
// The paper reports the framework's runtime overhead as <= 0.02% of the
// application period; these benchmarks measure the arbitration-path cost in
// nanoseconds so the claim can be checked against any period.
//
// Run with --check-trace-overhead (no google-benchmark) to gate the trace
// spine's end-to-end cost: a full MJPEG experiment run with a ring-buffer
// flight recorder subscribed must stay within budget (a 5% relative cap and
// an 8 ns per-traced-event absolute cap — see check_trace_overhead for the
// calibration) and must produce the identical output stream.
//
// Run with --check-parallel-campaign (no google-benchmark) to gate campaign
// determinism: the same MJPEG fault campaign executed at --jobs 1 and at
// --jobs 4 must produce byte-identical merged metrics registries, seeds, and
// latency samples; the measured wall-clock speedup is reported.
//
// Run with --check-online-overhead (no google-benchmark) to gate the online
// RTC monitor's cost: attaching it to a full MJPEG run (--online-monitor)
// must stay within budget (a 25% relative cap and an 800 ns per-observed-
// emission absolute cap — see check_online_overhead for the calibration) and
// leave the output stream untouched. In a SCCFT_TRACE_COMPILED_OUT build the gate instead
// verifies the zero-cost discipline directly: the monitor observes zero
// events, so it has nothing to do at all.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <iostream>
#include <string_view>
#include <thread>

#include "apps/mjpeg/app.hpp"
#include "apps/common/experiment.hpp"
#include "apps/common/generators.hpp"
#include "bench/campaign.hpp"
#include "apps/mjpeg/jpeg_codec.hpp"
#include "ft/nreplica.hpp"
#include "ft/replicator.hpp"
#include "ft/selector.hpp"
#include "kpn/channel.hpp"
#include "rtc/gpc.hpp"
#include "rtc/online/conformance.hpp"
#include "rtc/online/estimator.hpp"
#include "rtc/online/monitor.hpp"
#include "rtc/sizing.hpp"
#include "sim/simulator.hpp"
#include "trace/sinks.hpp"

namespace {

using namespace sccft;

kpn::Token small_token() {
  return kpn::Token(std::vector<std::uint8_t>(64, 0xAB), 0, 0);
}

void BM_PlainFifoWriteRead(benchmark::State& state) {
  sim::Simulator sim;
  kpn::FifoChannel fifo(sim, "f", 8);
  const auto token = small_token();
  std::uint64_t seq = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fifo.try_write(token.restamped(seq++, 0)));
    benchmark::DoNotOptimize(fifo.try_read());
  }
}
BENCHMARK(BM_PlainFifoWriteRead);

void BM_ReplicatorWriteBothReads(benchmark::State& state) {
  sim::Simulator sim;
  ft::ReplicatorChannel replicator(sim, "rep", {4, 4, std::nullopt, std::nullopt});
  auto& r1 = replicator.read_interface(ft::ReplicaIndex::kReplica1);
  auto& r2 = replicator.read_interface(ft::ReplicaIndex::kReplica2);
  const auto token = small_token();
  std::uint64_t seq = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(replicator.try_write(token.restamped(seq++, 0)));
    benchmark::DoNotOptimize(r1.try_read());
    benchmark::DoNotOptimize(r2.try_read());
  }
}
BENCHMARK(BM_ReplicatorWriteBothReads);

void BM_SelectorPairArbitration(benchmark::State& state) {
  sim::Simulator sim;
  ft::SelectorChannel selector(
      sim, "sel",
      {.capacity1 = 8, .capacity2 = 8, .initial1 = 2, .initial2 = 2,
       .divergence_threshold = 1'000'000,
       .link1 = std::nullopt,
       .link2 = std::nullopt});
  auto& w1 = selector.write_interface(ft::ReplicaIndex::kReplica1);
  auto& w2 = selector.write_interface(ft::ReplicaIndex::kReplica2);
  const auto token = small_token();
  std::uint64_t seq = 0;
  for (auto _ : state) {
    // One duplicate pair: enqueue + drop + consumer read.
    benchmark::DoNotOptimize(w1.try_write(token.restamped(seq, 0)));
    benchmark::DoNotOptimize(w2.try_write(token.restamped(seq, 0)));
    benchmark::DoNotOptimize(selector.try_read());
    ++seq;
  }
}
BENCHMARK(BM_SelectorPairArbitration);

void BM_PjdCurveEvaluation(benchmark::State& state) {
  rtc::PJDUpperCurve upper(rtc::PJD::from_ms(30, 5, 30));
  rtc::TimeNs t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(upper.value_at(t));
    t = (t + 1'000'003) % rtc::from_ms(500.0);
  }
}
BENCHMARK(BM_PjdCurveEvaluation);

void BM_FullSizingAnalysis(benchmark::State& state) {
  const auto app = apps::mjpeg::make_application();
  const auto model = app.timing.to_model();
  const auto horizon = app.timing.default_horizon();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rtc::analyze_duplicated_network(model, horizon));
  }
}
BENCHMARK(BM_FullSizingAnalysis)->Unit(benchmark::kMicrosecond);

void BM_DetectionLatencyBound(benchmark::State& state) {
  rtc::PJDLowerCurve lower(rtc::PJD::from_ms(30, 30, 30));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rtc::detection_latency_bound_silence(lower, 4, rtc::from_ms(3000.0)));
  }
}
BENCHMARK(BM_DetectionLatencyBound)->Unit(benchmark::kMicrosecond);

void BM_NReplicaSelectorArbitration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Simulator sim;
  ft::NSelectorChannel selector(
      sim, "nsel",
      {std::vector<rtc::Tokens>(n, 8), std::vector<rtc::Tokens>(n, 2), 1'000'000,
       true});
  const auto token = small_token();
  std::uint64_t seq = 0;
  for (auto _ : state) {
    for (std::size_t r = 0; r < n; ++r) {
      benchmark::DoNotOptimize(selector.write_interface(static_cast<int>(r))
                                   .try_write(token.restamped(seq, 0)));
    }
    benchmark::DoNotOptimize(selector.try_read());
    ++seq;
  }
}
BENCHMARK(BM_NReplicaSelectorArbitration)->Arg(2)->Arg(3)->Arg(4);

void BM_MjpegEncodeFrame(benchmark::State& state) {
  const auto frame = apps::generate_frame(320, 240, 1, 2014);
  for (auto _ : state) {
    benchmark::DoNotOptimize(apps::mjpeg::encode_frame(frame, 75));
  }
}
BENCHMARK(BM_MjpegEncodeFrame)->Unit(benchmark::kMillisecond);

void BM_GpcAnalysis(benchmark::State& state) {
  rtc::PJDUpperCurve upper(rtc::PJD::from_ms(10, 5, 10));
  rtc::PJDLowerCurve lower(rtc::PJD::from_ms(10, 5, 10));
  rtc::RateLatencyCurve service(rtc::from_ms(4.0), rtc::from_ms(2.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rtc::gpc_analyze(upper, lower, service, rtc::from_ms(500.0)));
  }
}
BENCHMARK(BM_GpcAnalysis)->Unit(benchmark::kMillisecond);

// --- online-RTC estimator cost ---------------------------------------------
// Per-event cost of the empirical-curve machinery: the monotone-pointer
// update across an 8-level lattice (amortized O(levels) with no allocation
// in steady state), alone and with the Eq. (2) conformance check on top.

void BM_CurveEstimatorAddEvent(benchmark::State& state) {
  rtc::online::CurveEstimator estimator(
      {.base_delta = rtc::from_ms(10.0), .levels = 8});
  rtc::TimeNs t = 0;
  for (auto _ : state) {
    estimator.add_event(t);
    benchmark::DoNotOptimize(estimator.window_count(0));
    t += 9'999'937;  // ~one period, prime-offset so windows keep sliding
  }
}
BENCHMARK(BM_CurveEstimatorAddEvent);

void BM_CurveEstimatorAddEventChecked(benchmark::State& state) {
  const rtc::PJD model = rtc::PJD::from_ms(10, 20, 0);
  rtc::online::CurveEstimator estimator(
      {.base_delta = model.period, .levels = 8});
  const auto curves = rtc::ArrivalCurvePair::from_pjd(model);
  rtc::online::ConformanceChecker checker(estimator, curves.lower.get(),
                                          curves.upper.get());
  rtc::TimeNs t = 0;
  for (auto _ : state) {
    estimator.add_event(t);
    benchmark::DoNotOptimize(checker.check(estimator));
    t += 9'999'937;
  }
}
BENCHMARK(BM_CurveEstimatorAddEventChecked);

// --- trace-spine cost ------------------------------------------------------
// Four regimes of the same emit site. The baseline loop body (no emit at
// all) is exactly what a SCCFT_TRACE_COMPILED_OUT build pays; the
// no-subscriber case is the compiled-in fast path (one load + AND + branch);
// the ring/CSV cases pay full dispatch into a sink.

void BM_TraceEmitBaseline(benchmark::State& state) {
  std::int64_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(++t);
  }
}
BENCHMARK(BM_TraceEmitBaseline);

void BM_TraceEmitNoSubscriber(benchmark::State& state) {
  sim::Simulator sim;
  trace::TraceBus& bus = sim.trace();
  const trace::SubjectId subject = bus.intern("bench");
  std::int64_t t = 0;
  for (auto _ : state) {
    SCCFT_TRACE(bus, trace::EventKind::kEnqueue, subject, t, t, 3);
    benchmark::DoNotOptimize(++t);
  }
}
BENCHMARK(BM_TraceEmitNoSubscriber);

void BM_TraceEmitRingBuffer(benchmark::State& state) {
  sim::Simulator sim;
  trace::TraceBus& bus = sim.trace();
  const trace::SubjectId subject = bus.intern("bench");
  trace::RingBufferSink ring;
  bus.subscribe(&ring, trace::kFlightRecorderMask);
  std::int64_t t = 0;
  for (auto _ : state) {
    SCCFT_TRACE(bus, trace::EventKind::kEnqueue, subject, t, t, 3);
    benchmark::DoNotOptimize(++t);
  }
  bus.unsubscribe(&ring);
}
BENCHMARK(BM_TraceEmitRingBuffer);

void BM_TraceEmitCsvSink(benchmark::State& state) {
  sim::Simulator sim;
  trace::TraceBus& bus = sim.trace();
  const trace::SubjectId subject = bus.intern("bench");
  trace::CsvSink csv(bus);
  bus.subscribe(&csv, trace::kFlightRecorderMask);
  std::int64_t t = 0;
  for (auto _ : state) {
    SCCFT_TRACE(bus, trace::EventKind::kEnqueue, subject, t, t, 3);
    benchmark::DoNotOptimize(++t);
    // Bound the event buffer; clear() keeps the vector's capacity, so after
    // the first batch this is an amortized pointer reset.
    if ((t & 0xFFFF) == 0) csv.clear();
  }
  bus.unsubscribe(&csv);
}
BENCHMARK(BM_TraceEmitCsvSink);

// --- end-to-end trace-overhead gate ---------------------------------------

/// One timed MJPEG experiment run; returns wall seconds.
double timed_run(apps::ExperimentRunner& runner, apps::ExperimentOptions& options,
                 apps::ExperimentResult* result_out = nullptr) {
  const auto start = std::chrono::steady_clock::now();
  auto result = runner.run(options);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  if (result_out != nullptr) *result_out = std::move(result);
  return elapsed.count();
}

/// Gate: a ring-buffer flight recorder (kFlightRecorderMask — everything but
/// the scheduler firehose) must stay cheap on the MJPEG reference run.
/// Interleaved min-of-N filters scheduler noise; extra rounds are only spent
/// if the first verdict is over the line.
///
/// Budget calibration (same reasoning as the online gate below): the sink's
/// cost is per traced event, so after the DES-kernel overhaul shrank the
/// run's wall time ~10x, a tight percentage budget measures kernel speed and
/// machine load more than sink cost. Two caps:
///   * 12% relative, end to end — integration sanity. The batched staging
///     path sits at ~1-7% across idle and loaded hosts (the early-exit keeps
///     near-cap rounds cheap); the end-to-end delta is dominated by machine
///     load (cache/bandwidth contention), so the cap is deliberately loose.
///   * 16 ns per staged emit, hot loop — the cost teeth. A tight L1-resident
///     loop of SCCFT_TRACE into a subscribed ring sink measures the staging
///     path itself (~8 ns/emit: a push_back plus an amortized whole-buffer
///     on_batch flush) without end-to-end load sensitivity.
int check_trace_overhead() {
  apps::ExperimentRunner runner(apps::mjpeg::make_application());
  apps::ExperimentOptions options;
  options.run_periods = 240;
  options.seed = 1;

  // Warm-up: populates the runner's payload/transform caches, so the timed
  // runs below are pure simulation + instrumentation.
  apps::ExperimentResult untraced;
  (void)timed_run(runner, options, &untraced);

  trace::RingBufferSink ring;
  constexpr double kMaxRatio = 1.12;
  constexpr double kMaxNsPerEmit = 16.0;
  constexpr int kRepsPerRound = 5;
  constexpr int kMaxRounds = 3;
  double best_off = 1e30, best_ring = 1e30;
  apps::ExperimentResult traced;
  int traced_runs = 0;
  for (int round = 0; round < kMaxRounds; ++round) {
    for (int rep = 0; rep < kRepsPerRound; ++rep) {
      options.trace_sink = nullptr;
      best_off = std::min(best_off, timed_run(runner, options));
      options.trace_sink = &ring;
      options.trace_mask = trace::kFlightRecorderMask;
      best_ring = std::min(best_ring, timed_run(runner, options, &traced));
      ++traced_runs;
      options.trace_sink = nullptr;
    }
    if (best_ring <= best_off * kMaxRatio) break;
  }

  const double overhead_pct = (best_ring / best_off - 1.0) * 100.0;
  // total_events() spans the sink's lifetime (every traced rep), so divide
  // down to one run's worth for the report.
  const double events_per_run =
      static_cast<double>(ring.total_events()) / traced_runs;
  std::cout << "trace overhead gate: untraced min "
            << static_cast<long long>(best_off * 1e6) << " us, ring-sink min "
            << static_cast<long long>(best_ring * 1e6) << " us ("
            << overhead_pct << "% overhead, "
            << static_cast<long long>(events_per_run) << " events/run)\n";

  // Hot-loop per-emit cost of the staged path (load-stable, unlike the
  // end-to-end delta): min over reps of a tight emit loop into the ring.
  double best_emit_ns = 1e30;
  {
    sim::Simulator hot_sim;
    trace::TraceBus& hot_bus = hot_sim.trace();
    const trace::SubjectId subject = hot_bus.intern("gate");
    trace::RingBufferSink hot_ring;
    hot_bus.subscribe(&hot_ring, trace::kFlightRecorderMask);
    constexpr std::int64_t kEmits = 1'000'000;
    for (int rep = 0; rep < 5; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      for (std::int64_t t = 0; t < kEmits; ++t) {
        SCCFT_TRACE(hot_bus, trace::EventKind::kEnqueue, subject, t, t, 3);
      }
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      best_emit_ns = std::min(best_emit_ns, elapsed.count() * 1e9 / kEmits);
    }
    hot_bus.unsubscribe(&hot_ring);
  }
  std::cout << "trace overhead gate: " << best_emit_ns
            << " ns per staged emit, hot loop (budget " << kMaxNsPerEmit
            << ")\n";

  if (untraced.output_checksums != traced.output_checksums) {
    std::cout << "FAIL: tracing changed the output stream\n";
    return 1;
  }
  if (best_ring > best_off * kMaxRatio) {
    std::cout << "FAIL: ring-buffer sink exceeds the 12% relative budget\n";
    return 1;
  }
  if (best_emit_ns > kMaxNsPerEmit) {
    std::cout << "FAIL: staged emit exceeds the hot-loop per-emit budget\n";
    return 1;
  }
  std::cout << "PASS: ring-buffer flight recorder within budget\n";
  return 0;
}

// --- online-monitor overhead gate ------------------------------------------

/// Gate: attaching the online RTC monitor (estimators + conformance checks on
/// producer/r1.out/r2.out) to a full MJPEG run must stay within budget and
/// must not perturb the output stream.
///
/// Budget calibration. The monitor's cost is fixed per observed emission
/// (~1k emissions/run regardless of how fast the kernel executes them), so a
/// pure percentage budget conflates kernel speed with monitor cost: after the
/// DES-kernel overhaul the same 240-period run finishes ~10x faster, and the
/// original 3%-of-wall-time allowance (~45 us) fell below the irreducible
/// integration cost alone (bus dispatch of ~956 events + the finalize-time
/// redimension report come to ~50 us with the estimators doing *zero* work).
/// The gate therefore checks two things:
///   * a relative cap of 25%, end to end — loose enough to be meaningful on
///     the fast kernel, and empirically stable across machine-load regimes
///     (the fused estimator path sits at ~15-21% on loaded and idle hosts
///     alike, while the pre-fusion implementation sat at ~28%);
///   * a hot-loop cap of 180 ns per emission through the full bus+monitor
///     path (three streams, 8-level lattice each) — the load-stable cost
///     teeth. The fused single-pass estimator+checker sits at ~90-100 ns;
///     the pre-fusion two-pass implementation sat at ~260 ns and fails.
/// The end-to-end delta per observed emission is printed as a diagnostic but
/// not gated: it is dominated by cache contention with the co-running MJPEG
/// pipeline and swings 2x with machine load.
///
/// With SCCFT_TRACE_COMPILED_OUT the kEmission events the monitor feeds on do
/// not exist, so the gate asserts the stronger property instead: zero observed
/// events (and therefore literally no monitor work on the data path).
int check_online_overhead() {
  apps::ExperimentRunner runner(apps::mjpeg::make_application());
  apps::ExperimentOptions options;
  options.run_periods = 240;
  options.seed = 1;

  // Warm-up (monitor off): populates the runner's payload/transform caches.
  apps::ExperimentResult off_result;
  (void)timed_run(runner, options, &off_result);

#ifdef SCCFT_TRACE_COMPILED_OUT
  options.online_monitor = true;
  apps::ExperimentResult on_result;
  (void)timed_run(runner, options, &on_result);
  std::uint64_t observed = 0;
  for (const auto& stream : on_result.online_streams) observed += stream.events;
  std::cout << "online overhead gate: data-path tracing compiled out, monitor "
            << "observed " << observed << " events across "
            << on_result.online_streams.size() << " streams\n";
  if (observed != 0) {
    std::cout << "FAIL: compiled-out build still delivered emission events\n";
    return 1;
  }
  if (off_result.output_checksums != on_result.output_checksums) {
    std::cout << "FAIL: the online monitor changed the output stream\n";
    return 1;
  }
  std::cout << "PASS: zero events observed — the monitor is free by construction\n";
  return 0;
#else
  constexpr double kMaxRatio = 1.25;
  constexpr double kMaxHotNsPerEmission = 180.0;
  constexpr int kRepsPerRound = 5;
  constexpr int kMaxRounds = 3;
  double best_off = 1e30, best_on = 1e30;
  apps::ExperimentResult on_result;
  for (int round = 0; round < kMaxRounds; ++round) {
    for (int rep = 0; rep < kRepsPerRound; ++rep) {
      options.online_monitor = false;
      best_off = std::min(best_off, timed_run(runner, options));
      options.online_monitor = true;
      best_on = std::min(best_on, timed_run(runner, options, &on_result));
      options.online_monitor = false;
    }
    if (best_on <= best_off * kMaxRatio) break;
  }

  std::uint64_t observed = 0;
  bool violated = false;
  for (const auto& stream : on_result.online_streams) {
    observed += stream.events;
    if (stream.first_violation) violated = true;
  }
  const double overhead_pct = (best_on / best_off - 1.0) * 100.0;
  std::cout << "online overhead gate: monitor-off min "
            << static_cast<long long>(best_off * 1e6) << " us, monitor-on min "
            << static_cast<long long>(best_on * 1e6) << " us (" << overhead_pct
            << "% overhead, " << observed << " events observed)\n";

  if (observed == 0) {
    std::cout << "FAIL: the monitor observed no emissions (wiring broken?)\n";
    return 1;
  }
  const double ns_per_event =
      (best_on - best_off) * 1e9 / static_cast<double>(observed);
  std::cout << "online overhead gate: " << ns_per_event
            << " ns per observed emission end to end (diagnostic)\n";

  // Hot-loop per-emission cost of the full bus -> monitor -> fused
  // estimator+checker path, three streams as in the experiment wiring.
  double best_hot_ns = 1e30;
  {
    const auto app = apps::mjpeg::make_application();
    const rtc::TimeNs period = app.timing.producer.period;
    trace::TraceBus hot_bus;
    const rtc::online::LatticeConfig lattice{.base_delta = period, .levels = 8};
    auto stream = [](std::string subject, int replica, const rtc::PJD& model) {
      auto curves = rtc::ArrivalCurvePair::from_pjd(model);
      rtc::online::StreamSpec spec;
      spec.name = subject;
      spec.subject = std::move(subject);
      spec.replica = replica;
      spec.design_lower = std::move(curves.lower);
      spec.design_upper = std::move(curves.upper);
      return spec;
    };
    std::vector<rtc::online::StreamSpec> specs;
    specs.push_back(stream("producer", -1, app.timing.producer));
    specs.push_back(stream("r1.out", 0, app.timing.replica1_out));
    specs.push_back(stream("r2.out", 1, app.timing.replica2_out));
    rtc::online::OnlineMonitor monitor(hot_bus, lattice, std::move(specs));
    const trace::SubjectId subjects[3] = {hot_bus.intern("producer"),
                                          hot_bus.intern("r1.out"),
                                          hot_bus.intern("r2.out")};
    constexpr int kEmissions = 717;
    rtc::TimeNs t = 0;
    for (int rep = 0; rep < 5; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      for (int k = 0; k < kEmissions; ++k) {
        // One conformant emission per stream per period, round-robin with a
        // small phase offset so every window keeps sliding.
        t += period / 3;
        hot_bus.emit(trace::EventKind::kEmission, subjects[k % 3],
                     t + (k % 3) * 1000);
      }
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      best_hot_ns = std::min(best_hot_ns, elapsed.count() * 1e9 / kEmissions);
    }
  }
  std::cout << "online overhead gate: " << best_hot_ns
            << " ns per emission through bus+monitor, hot loop (budget "
            << kMaxHotNsPerEmission << ")\n";
  if (violated) {
    std::cout << "FAIL: conformance violation on a fault-free conformant run\n";
    return 1;
  }
  if (off_result.output_checksums != on_result.output_checksums) {
    std::cout << "FAIL: the online monitor changed the output stream\n";
    return 1;
  }
  if (best_on > best_off * kMaxRatio) {
    std::cout << "FAIL: online monitor exceeds the 25% relative budget\n";
    return 1;
  }
  if (best_hot_ns > kMaxHotNsPerEmission) {
    std::cout << "FAIL: online monitor exceeds the hot-loop per-emission "
              << "budget\n";
    return 1;
  }
  std::cout << "PASS: online RTC monitor within budget, zero false "
            << "positives\n";
  return 0;
#endif
}

// --- parallel-campaign determinism gate ------------------------------------

/// Gate: the identical MJPEG fault campaign run at --jobs 1 and --jobs 4 must
/// fold to byte-identical results (merged registry CSV, seed provenance,
/// detection-latency samples). Speedup is reported but not gated: on a
/// single-core CI runner the parallel path can only tie.
int check_parallel_campaign() {
  apps::ExperimentRunner runner(apps::mjpeg::make_application());
  apps::ExperimentOptions options;
  options.run_periods = 240;
  options.fault_after_periods = 150;
  constexpr int kCampaignRuns = 8;

  // Warm-up run populates the runner's shared payload/transform caches so the
  // two timed campaigns below start from the same cache state.
  {
    apps::ExperimentOptions warm = options;
    warm.seed = 1;
    (void)runner.run(warm);
  }

  const auto timed_campaign = [&](int jobs, double* seconds) {
    const auto start = std::chrono::steady_clock::now();
    auto campaign = bench::run_fault_campaign(runner, options,
                                              ft::ReplicaIndex::kReplica1,
                                              kCampaignRuns, jobs);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    *seconds = elapsed.count();
    return campaign;
  };

  double serial_s = 0.0, parallel_s = 0.0;
  const auto serial = timed_campaign(1, &serial_s);
  const auto parallel = timed_campaign(4, &parallel_s);

  std::cout << "parallel campaign gate: " << kCampaignRuns << " runs, --jobs 1 in "
            << static_cast<long long>(serial_s * 1e3) << " ms, --jobs 4 in "
            << static_cast<long long>(parallel_s * 1e3) << " ms (speedup "
            << (parallel_s > 0.0 ? serial_s / parallel_s : 0.0) << "x, "
            << std::thread::hardware_concurrency() << " hardware threads)\n";

  bool ok = true;
  if (serial.seeds != parallel.seeds) {
    std::cout << "FAIL: seed provenance differs between job counts\n";
    ok = false;
  }
  if (serial.first_latency_ms.samples() != parallel.first_latency_ms.samples()) {
    std::cout << "FAIL: detection-latency samples differ between job counts\n";
    ok = false;
  }
  if (serial.detected != parallel.detected ||
      serial.false_positives != parallel.false_positives ||
      serial.correct_replica != parallel.correct_replica) {
    std::cout << "FAIL: detection tallies differ between job counts\n";
    ok = false;
  }
  if (serial.merged.render_csv() != parallel.merged.render_csv()) {
    std::cout << "FAIL: merged metrics registries are not byte-identical\n";
    ok = false;
  }
  if (!ok) return 1;
  std::cout << "PASS: campaign results byte-identical at --jobs 1 and --jobs 4\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--check-trace-overhead") {
      return check_trace_overhead();
    }
    if (std::string_view(argv[i]) == "--check-parallel-campaign") {
      return check_parallel_campaign();
    }
    if (std::string_view(argv[i]) == "--check-online-overhead") {
      return check_online_overhead();
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
