// Ablation A: divergence-threshold sweep (DESIGN.md Section 5, item 1).
//
// Eq. (5)'s D is the smallest threshold with zero false positives. This
// bench sweeps D around the analyzed value and reports, per D over 20 runs:
// detection latency at the selector (faults get caught faster with smaller
// D) and the false-positive count on fault-free runs (non-zero once D drops
// below the Eq. (5) value).
#include <iostream>

#include "apps/adpcm/app.hpp"
#include "bench/campaign.hpp"

int main() {
  using namespace sccft;
  apps::ExperimentRunner runner(apps::adpcm::make_application());

  apps::ExperimentOptions base;
  base.run_periods = 240;
  base.fault_after_periods = 150;
  base.enable_selector_stall_rule = false;  // isolate the divergence rule

  const auto analyzed = rtc::analyze_duplicated_network(
      runner.app().timing.to_model(), runner.app().timing.default_horizon());
  std::cout << "Analyzed Eq. (5) threshold: D = " << analyzed.selector_threshold
            << "\n\n";

  util::Table table("Ablation A: selector divergence threshold D (ADPCM, 20+20 runs)");
  table.set_header({"D", "Detection latency (fault runs)", "Detections", "False positives (fault-free runs)"});

  for (rtc::Tokens d = 2; d <= analyzed.selector_threshold + 3; ++d) {
    auto options = base;
    options.divergence_override = d;

    const auto faults =
        bench::run_fault_campaign(runner, options, ft::ReplicaIndex::kReplica1);
    const auto clean = bench::run_fault_free_campaign(runner, options);

    table.add_row({std::to_string(d) + (d == analyzed.selector_threshold ? " *" : ""),
                   bench::stat_row(faults.selector_latency_ms),
                   std::to_string(faults.detected) + "/" + std::to_string(bench::kRuns),
                   std::to_string(clean.false_positives + faults.false_positives)});
  }
  std::cout << table << "\n";
  std::cout
      << "* = the Eq. (5) value: the smallest D with a *guaranteed* zero\n"
         "false-positive rate over all conforming streams. Smaller D values may\n"
         "survive a finite campaign (the worst-case jitter alignment is rare)\n"
         "until they don't — D=2 misflags legal jitter in every run here. Above\n"
         "D*, detection latency grows ~linearly with D (Eq. 6: 2D-1 tokens).\n";
  return 0;
}
