// Regenerates the paper's Table 3: fault-detection latency of our approach
// vs. the distance-function baseline (Neukirchner-style, 1 ms polling) for
// all three applications.
//
// Following Section 4.3's setup, "timing variations from the replicas were
// minimized" and the distance function runs with l = 1 in fail-silent mode.
// Both monitors observe the same faulty replica; our numbers are the
// channels' own (timer-free) detections, the baseline's come from the polled
// monitor watching the replica's consumption stream.
#include <iostream>

#include "apps/adpcm/app.hpp"
#include "apps/h264/app.hpp"
#include "apps/mjpeg/app.hpp"
#include "bench/campaign.hpp"
#include "util/cli.hpp"

namespace {

using namespace sccft;

struct Row {
  std::string name;
  util::SampleSet ours, distance, watchdog, online;
};

Row run_app(apps::ApplicationSpec app, int jobs, bool online_monitor) {
  Row row;
  row.name = app.name;
  apps::ExperimentRunner runner(apps::minimize_replica_jitter(std::move(app)));

  apps::ExperimentOptions options;
  options.run_periods = 240;
  options.fault_after_periods = 150;
  options.attach_baseline_monitors = true;
  options.monitor_polling_interval = rtc::from_ms(1.0);
  options.monitor_history_l = 1;
  options.online_monitor = online_monitor;

  const auto campaign = bench::run_fault_campaign(
      runner, options, ft::ReplicaIndex::kReplica1, bench::kRuns, jobs);
  row.ours = campaign.first_latency_ms;
  row.distance = campaign.distance_latency_ms;
  row.watchdog = campaign.watchdog_latency_ms;
  row.online = campaign.online_latency_ms;
  return row;
}

std::string cell(const util::SampleSet& set, double (util::SampleSet::*fn)() const) {
  return set.empty() ? "-" : util::format_double((set.*fn)(), 1);
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("table3_comparison",
                      "Paper Table 3: detection latency vs. polled baselines "
                      "(20-run campaigns)");
  util::add_jobs_flag(cli);
  cli.add_flag("online-monitor", "false",
               "attach the online-RTC monitor (rtc/online) and add a column "
               "with its curve-conformance detection latency");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", cli.error().c_str(), cli.usage().c_str());
    return 2;
  }
  if (cli.help_requested()) {
    std::fprintf(stdout, "%s", cli.usage().c_str());
    return 0;
  }
  const int jobs = util::get_jobs(cli);
  const bool online_monitor = cli.get_bool("online-monitor");

  util::Table table(
      "Table 3: Fault-detection latency (ms) — our approach vs. distance-function "
      "baseline (1 ms polling, l=1, replica jitters minimized; 20 runs)");
  std::vector<std::string> header{"Application", "Ours max", "Ours min", "Ours mean",
                                  "DF max",      "DF min",   "DF mean",  "WD mean"};
  if (online_monitor) header.push_back("Online mean");
  table.set_header(header);

  for (auto app : {apps::mjpeg::make_application(), apps::adpcm::make_application(),
                   apps::h264::make_application()}) {
    const Row row = run_app(std::move(app), jobs, online_monitor);
    std::vector<std::string> cells{row.name, cell(row.ours, &util::SampleSet::max),
                                   cell(row.ours, &util::SampleSet::min),
                                   cell(row.ours, &util::SampleSet::mean),
                                   cell(row.distance, &util::SampleSet::max),
                                   cell(row.distance, &util::SampleSet::min),
                                   cell(row.distance, &util::SampleSet::mean),
                                   cell(row.watchdog, &util::SampleSet::mean)};
    if (online_monitor) cells.push_back(cell(row.online, &util::SampleSet::mean));
    table.add_row(cells);
  }
  std::cout << table << "\n";
  std::cout
      << "Both approaches detect within a small number of periods. The\n"
         "distance-function baseline needs a runtime timer per monitored\n"
         "stream (4 timers in the paper's setup) and its latency is\n"
         "quantized by the polling interval (see bench/ablation_polling);\n"
         "our approach detects with zero runtime timekeeping, paying the\n"
         "queue-fill time of the Eq. (3) capacity instead.\n";
  if (online_monitor) {
    std::cout
        << "\nOnline mean: first Eq. (2) conformance breach of the faulty\n"
           "replica's output stream, measured from the fault instant. A '-'\n"
           "means the minimized-jitter model was already breached before the\n"
           "fault: shrinking a replica's design jitter below its real\n"
           "pipeline variability makes the envelope unsound, and the monitor\n"
           "reports exactly that (run table2_* --online-monitor for the\n"
           "faithful-model conformance counts).\n";
  }
  return 0;
}
