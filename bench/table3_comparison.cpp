// Regenerates the paper's Table 3: fault-detection latency of our approach
// vs. the distance-function baseline (Neukirchner-style, 1 ms polling) for
// all three applications.
//
// Following Section 4.3's setup, "timing variations from the replicas were
// minimized" and the distance function runs with l = 1 in fail-silent mode.
// Both monitors observe the same faulty replica; our numbers are the
// channels' own (timer-free) detections, the baseline's come from the polled
// monitor watching the replica's consumption stream.
#include <iostream>

#include "apps/adpcm/app.hpp"
#include "apps/h264/app.hpp"
#include "apps/mjpeg/app.hpp"
#include "bench/campaign.hpp"
#include "util/cli.hpp"

namespace {

using namespace sccft;

struct Row {
  std::string name;
  util::SampleSet ours, distance, watchdog;
};

Row run_app(apps::ApplicationSpec app, int jobs) {
  Row row;
  row.name = app.name;
  apps::ExperimentRunner runner(apps::minimize_replica_jitter(std::move(app)));

  apps::ExperimentOptions options;
  options.run_periods = 240;
  options.fault_after_periods = 150;
  options.attach_baseline_monitors = true;
  options.monitor_polling_interval = rtc::from_ms(1.0);
  options.monitor_history_l = 1;

  const auto campaign = bench::run_fault_campaign(
      runner, options, ft::ReplicaIndex::kReplica1, bench::kRuns, jobs);
  row.ours = campaign.first_latency_ms;
  row.distance = campaign.distance_latency_ms;
  row.watchdog = campaign.watchdog_latency_ms;
  return row;
}

std::string cell(const util::SampleSet& set, double (util::SampleSet::*fn)() const) {
  return set.empty() ? "-" : util::format_double((set.*fn)(), 1);
}

}  // namespace

int main(int argc, char** argv) {
  const int jobs = util::parse_jobs_or_exit(
      argc, argv, "table3_comparison",
      "Paper Table 3: detection latency vs. polled baselines (20-run campaigns)");
  util::Table table(
      "Table 3: Fault-detection latency (ms) — our approach vs. distance-function "
      "baseline (1 ms polling, l=1, replica jitters minimized; 20 runs)");
  table.set_header({"Application", "Ours max", "Ours min", "Ours mean", "DF max",
                    "DF min", "DF mean", "WD mean"});

  for (auto app : {apps::mjpeg::make_application(), apps::adpcm::make_application(),
                   apps::h264::make_application()}) {
    const Row row = run_app(std::move(app), jobs);
    table.add_row({row.name, cell(row.ours, &util::SampleSet::max),
                   cell(row.ours, &util::SampleSet::min),
                   cell(row.ours, &util::SampleSet::mean),
                   cell(row.distance, &util::SampleSet::max),
                   cell(row.distance, &util::SampleSet::min),
                   cell(row.distance, &util::SampleSet::mean),
                   cell(row.watchdog, &util::SampleSet::mean)});
  }
  std::cout << table << "\n";
  std::cout
      << "Both approaches detect within a small number of periods. The\n"
         "distance-function baseline needs a runtime timer per monitored\n"
         "stream (4 timers in the paper's setup) and its latency is\n"
         "quantized by the polling interval (see bench/ablation_polling);\n"
         "our approach detects with zero runtime timekeeping, paying the\n"
         "queue-fill time of the Eq. (3) capacity instead.\n";
  return 0;
}
