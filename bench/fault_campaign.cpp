// Expanded fault-model campaign: sweeps every FaultKind of ft/fault_plan.hpp
// (transient / intermittent silence, payload corruption, rate degradation,
// NoC link faults) across rates and durations, with the Supervisor
// (ft/supervisor.hpp) closing the detect -> restart -> reintegrate loop.
//
// Reported per scenario, aggregated over the seed sweep:
//   * detection coverage  — runs in which the injected replica was convicted;
//   * false convictions   — runs in which the *healthy* replica was blamed;
//   * detection latency   — measured against the Eq. (6)-(8) analytic bound;
//   * restarts/degraded   — supervisor activity and terminal degradations;
//   * stream integrity    — sequence gaps, duplicates, corrupted deliveries;
//   * recovered throughput— consumer tokens/s in the final 500 ms window.
//
// Output: ASCII tables plus /tmp/sccft_fault_campaign.csv (override with
// --csv PATH); every run's RNG seed appears in the table titles and the CSV
// header for reproducibility.
//
// The scenario x seed grid is embarrassingly parallel: each run owns an
// isolated Simulator. With --jobs N the grid fans out onto N workers and the
// per-scenario statistics are folded in (scenario, seed) order, so the table
// and the CSV are byte-identical at any job count. Wall clock is reported on
// stderr (stdout stays diffable across job counts).
#include <algorithm>
#include <chrono>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench/campaign.hpp"
#include "ft/fault_plan.hpp"
#include "ft/framework.hpp"
#include "ft/supervisor.hpp"
#include "kpn/network.hpp"
#include "kpn/timing.hpp"
#include "scc/platform.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

namespace sccft::bench {
namespace {

constexpr int kCampaignRuns = 5;            // seeds 1..kCampaignRuns per scenario
constexpr rtc::TimeNs kRunLength = rtc::from_sec(2.4);
constexpr rtc::TimeNs kThroughputWindow = rtc::from_ms(500.0);

struct Scenario {
  std::string mode;
  std::string param;
  ft::FaultKind kind = ft::FaultKind::kPermanentSilence;
  ft::ReplicaIndex target = ft::ReplicaIndex::kReplica1;
  rtc::TimeNs at = rtc::from_ms(300.0);
  rtc::TimeNs duration = 0;
  double probability = 0;   // corruption per-token / NoC per-chunk drop chance
  double rate_factor = 0;
  rtc::TimeNs burst_on = 0, burst_off = 0;
  bool targets_replica = true;  // false for NoC faults (they hit the mesh)
};

struct RunOutcome {
  bool target_convicted = false;
  bool peer_convicted = false;
  bool degraded = false;
  int restarts = 0;
  std::optional<rtc::TimeNs> detection_latency;
  bool gap = false;
  bool duplicate = false;
  std::uint64_t corrupt_delivered = 0;
  std::uint64_t consumed = 0;
  double recovered_throughput_hz = 0;
  rtc::TimeNs bound = 0;
};

RunOutcome run_once(const Scenario& scenario, std::uint64_t seed) {
  sim::Simulator simulator;
  kpn::Network net(simulator);
  const bool with_noc = scenario.kind == ft::FaultKind::kNocLink;
  std::optional<scc::Platform> platform;
  if (with_noc) platform.emplace(simulator);

  ft::AppTimingSpec timing;
  timing.producer = rtc::PJD::from_ms(10, 1, 10);
  timing.replica1_in = timing.replica1_out = rtc::PJD::from_ms(10, 2, 10);
  timing.replica2_in = timing.replica2_out = rtc::PJD::from_ms(10, 6, 10);
  timing.consumer = rtc::PJD::from_ms(10, 1, 10);

  ft::FaultTolerantHarness::Config config{.timing = timing};
  if (with_noc) {
    config.platform = &*platform;
    config.producer_core = scc::CoreId{0};
    config.replica1_in_core = config.replica1_out_core = scc::CoreId{2};
    config.replica2_in_core = config.replica2_out_core = scc::CoreId{4};
    config.consumer_core = scc::CoreId{6};
  }
  ft::FaultTolerantHarness harness(net, config);

  RunOutcome outcome;
  outcome.bound = std::min(harness.sizing().replicator_overflow_bound,
                           harness.sizing().selector_latency_bound);

  std::vector<std::uint64_t> consumed_seqs;
  std::vector<rtc::TimeNs> consumed_times;

  net.add_process("producer", scc::CoreId{0}, seed * 10 + 1,
                  [&](kpn::ProcessContext& ctx) -> sim::Task {
                    kpn::TimingShaper shaper(timing.producer, 0, ctx.rng());
                    for (std::uint64_t k = 0;; ++k) {
                      const rtc::TimeNs t = shaper.next_emission(ctx.now());
                      if (t > ctx.now()) co_await ctx.delay(t - ctx.now());
                      std::vector<std::uint8_t> payload(4, static_cast<std::uint8_t>(k));
                      co_await kpn::write(harness.replicator(),
                                          kpn::Token(std::move(payload), k, ctx.now()));
                      shaper.commit(ctx.now());
                    }
                  });

  auto replica_body = [&](ft::ReplicaIndex which, rtc::PJD model) {
    return [&harness, which, model](kpn::ProcessContext& ctx) -> sim::Task {
      kpn::TimingShaper emit(model, ctx.now(), ctx.rng());
      rtc::TimeNs last_emit = -1;
      while (true) {
        SCCFT_FAULT_GATE(ctx);
        kpn::Token token =
            co_await kpn::read(harness.replicator().read_interface(which));
        SCCFT_FAULT_GATE(ctx);
        rtc::TimeNs target = emit.next_emission(ctx.now());
        // A rate-degraded replica emits at least factor * period apart (the
        // paper's "does so at a rate lower than expected").
        if (ctx.fault().rate_factor > 1.0 && last_emit >= 0) {
          target = std::max(target,
                            last_emit + static_cast<rtc::TimeNs>(
                                            ctx.fault().rate_factor *
                                            static_cast<double>(model.period)));
        }
        if (target > ctx.now()) co_await ctx.compute(target - ctx.now());
        SCCFT_FAULT_GATE(ctx);
        co_await kpn::write(harness.selector().write_interface(which), token);
        emit.commit(ctx.now());
        last_emit = ctx.now();
      }
    };
  };
  std::vector<kpn::Process*> replicas;
  replicas.push_back(&net.add_process(
      "r1", scc::CoreId{2}, seed * 10 + 2,
      replica_body(ft::ReplicaIndex::kReplica1, timing.replica1_out)));
  replicas.push_back(&net.add_process(
      "r2", scc::CoreId{4}, seed * 10 + 3,
      replica_body(ft::ReplicaIndex::kReplica2, timing.replica2_out)));

  net.add_process("consumer", scc::CoreId{6}, seed * 10 + 4,
                  [&](kpn::ProcessContext& ctx) -> sim::Task {
                    kpn::TimingShaper shaper(timing.consumer, 0, ctx.rng());
                    std::uint64_t expected = 0;
                    while (true) {
                      const rtc::TimeNs t = shaper.next_emission(ctx.now());
                      if (t > ctx.now()) co_await ctx.delay(t - ctx.now());
                      kpn::Token token = co_await kpn::read(harness.selector());
                      shaper.commit(ctx.now());
                      if (token.seq() > expected) outcome.gap = true;
                      if (token.seq() < expected) outcome.duplicate = true;
                      if (!token.verify_checksum()) ++outcome.corrupt_delivered;
                      expected = token.seq() + 1;
                      consumed_seqs.push_back(token.seq());
                      consumed_times.push_back(ctx.now());
                    }
                  });

  std::array<ft::ReplicaAssets, 2> assets{
      ft::ReplicaAssets{ft::ReplicaIndex::kReplica1, {replicas[0]}, {}},
      ft::ReplicaAssets{ft::ReplicaIndex::kReplica2, {replicas[1]}, {}}};
  ft::Supervisor::Config supervisor_config;
  supervisor_config.restart_budget = 3;
  supervisor_config.initial_backoff = rtc::from_ms(20.0);
  supervisor_config.detection_latency_bound = outcome.bound;
  ft::Supervisor supervisor(simulator, harness.replicator(), harness.selector(),
                            assets, supervisor_config);

  ft::FaultCampaign::Wiring wiring;
  wiring.replicator = &harness.replicator();
  wiring.selector = &harness.selector();
  wiring.processes[0] = {replicas[0]};
  wiring.processes[1] = {replicas[1]};
  if (with_noc) wiring.noc = &platform->noc();
  ft::FaultCampaign campaign(simulator, wiring);
  campaign.set_injection_listener([&](const ft::FaultInjectionRecord& rec) {
    supervisor.note_fault_injected(rec.replica, rec.at);
  });

  ft::FaultSpec spec;
  spec.kind = scenario.kind;
  spec.replica = scenario.target;
  spec.at = scenario.at;
  spec.duration = scenario.duration;
  spec.seed = seed;
  switch (scenario.kind) {
    case ft::FaultKind::kPayloadCorruption:
      spec.corrupt_probability = scenario.probability;
      break;
    case ft::FaultKind::kRateDegradation:
      spec.rate_factor = scenario.rate_factor;
      break;
    case ft::FaultKind::kIntermittentSilence:
      spec.burst_on_mean = scenario.burst_on;
      spec.burst_off_mean = scenario.burst_off;
      break;
    case ft::FaultKind::kNocLink:
      spec.noc.chunk_drop_probability = scenario.probability;
      spec.noc.seed = seed;
      break;
    default:
      break;
  }
  campaign.add(spec);
  campaign.arm();

  net.run_until(kRunLength);

  const auto& target_report = supervisor.report(scenario.target);
  const auto& peer_report = supervisor.report(ft::other(scenario.target));
  outcome.target_convicted = target_report.faults_seen > 0;
  outcome.peer_convicted = peer_report.faults_seen > 0;
  outcome.degraded = target_report.health == ft::ReplicaHealth::kDegraded ||
                     peer_report.health == ft::ReplicaHealth::kDegraded;
  outcome.restarts = target_report.restarts + peer_report.restarts;
  if (!target_report.detection_latencies.empty()) {
    outcome.detection_latency = target_report.detection_latencies.front();
  }
  outcome.consumed = consumed_seqs.size();
  std::uint64_t tail = 0;
  for (rtc::TimeNs t : consumed_times) {
    if (t >= kRunLength - kThroughputWindow) ++tail;
  }
  outcome.recovered_throughput_hz =
      static_cast<double>(tail) / (rtc::to_ms(kThroughputWindow) / 1000.0);
  return outcome;
}

std::vector<Scenario> scenarios() {
  std::vector<Scenario> list;
  for (double ms : {50.0, 200.0, 500.0}) {
    list.push_back({.mode = "transient-silence",
                    .param = util::format_double(ms, 0) + " ms outage",
                    .kind = ft::FaultKind::kTransientSilence,
                    .duration = rtc::from_ms(ms)});
  }
  list.push_back({.mode = "intermittent",
                  .param = "30/150 ms bursts",
                  .kind = ft::FaultKind::kIntermittentSilence,
                  .duration = rtc::from_ms(1'200.0),
                  .burst_on = rtc::from_ms(30.0),
                  .burst_off = rtc::from_ms(150.0)});
  for (double p : {0.05, 0.5, 1.0}) {
    list.push_back({.mode = "corruption",
                    .param = "p = " + util::format_double(p, 2),
                    .kind = ft::FaultKind::kPayloadCorruption,
                    .target = ft::ReplicaIndex::kReplica2,
                    .probability = p});
  }
  for (double f : {2.0, 4.0}) {
    list.push_back({.mode = "rate-degradation",
                    .param = "x" + util::format_double(f, 0) + " slowdown",
                    .kind = ft::FaultKind::kRateDegradation,
                    .rate_factor = f});
  }
  for (double p : {0.01, 0.1, 0.5}) {
    list.push_back({.mode = "noc-drop",
                    .param = "p = " + util::format_double(p, 2),
                    .kind = ft::FaultKind::kNocLink,
                    .duration = rtc::from_ms(1'200.0),
                    .probability = p,
                    .targets_replica = false});
  }
  return list;
}

int run(int jobs, const std::string& csv_path) {
  std::vector<std::uint64_t> seeds;
  for (int s = 1; s <= kCampaignRuns; ++s) seeds.push_back(static_cast<std::uint64_t>(s));

  // Fan the whole scenario x seed grid out onto the worker pool; collect into
  // index-addressed slots so the fold below runs in (scenario, seed) order
  // regardless of completion order.
  const std::vector<Scenario> scenario_list = scenarios();
  const int grid = static_cast<int>(scenario_list.size()) * kCampaignRuns;
  struct GridCell {
    RunOutcome outcome;
    std::string log;
  };
  std::vector<GridCell> cells(static_cast<std::size_t>(grid));
  const auto wall_start = std::chrono::steady_clock::now();
  util::parallel_for_ordered(grid, jobs, [&](int i) {
    util::ScopedLogCapture capture;
    const auto scenario_index = static_cast<std::size_t>(i / kCampaignRuns);
    const std::uint64_t seed = seeds[static_cast<std::size_t>(i % kCampaignRuns)];
    cells[static_cast<std::size_t>(i)].outcome =
        run_once(scenario_list[scenario_index], seed);
    cells[static_cast<std::size_t>(i)].log = capture.take();
  });
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;
  std::cerr << "fault campaign: " << grid << " runs in "
            << static_cast<long long>(wall.count() * 1000.0) << " ms with --jobs "
            << jobs << "\n";
  for (const GridCell& cell : cells) util::flush_captured(cell.log);

  util::Table table("Fault campaign: expanded fault model under supervision (" +
                    std::to_string(kCampaignRuns) + " runs per scenario, " +
                    seed_list(seeds) + ")");
  table.set_header({"Mode", "Parameter", "Coverage", "False conv.", "Latency mean/max",
                    "Bound", "Restarts", "Degraded", "Corrupt out", "Gap", "Thr (tok/s)"});
  util::CsvWriter csv({"mode", "param", "runs", "detected", "false_convictions",
                       "latency_mean_ms", "latency_max_ms", "bound_ms", "restarts",
                       "degraded", "corrupt_delivered", "gap_runs", "dup_runs",
                       "recovered_throughput_hz"});
  csv.add_comment("fault campaign, " + std::to_string(kCampaignRuns) +
                  " runs per scenario, " + seed_list(seeds));

  for (std::size_t s = 0; s < scenario_list.size(); ++s) {
    const Scenario& scenario = scenario_list[s];
    int detected = 0, false_conv = 0, restarts = 0, degraded = 0;
    int gap_runs = 0, dup_runs = 0;
    std::uint64_t corrupt = 0;
    util::SampleSet latency_ms, throughput;
    rtc::TimeNs bound = 0;
    for (int run = 0; run < kCampaignRuns; ++run) {
      const RunOutcome& r =
          cells[s * static_cast<std::size_t>(kCampaignRuns) +
                static_cast<std::size_t>(run)]
              .outcome;
      bound = r.bound;
      if (scenario.targets_replica) {
        if (r.target_convicted) ++detected;
        if (r.peer_convicted) ++false_conv;
      } else if (r.target_convicted || r.peer_convicted) {
        // NoC faults hit the mesh, not a replica: any conviction blames a
        // healthy core for the network's sins.
        ++false_conv;
      }
      if (r.detection_latency) latency_ms.add(rtc::to_ms(*r.detection_latency));
      restarts += r.restarts;
      if (r.degraded) ++degraded;
      corrupt += r.corrupt_delivered;
      if (r.gap) ++gap_runs;
      if (r.duplicate) ++dup_runs;
      throughput.add(r.recovered_throughput_hz);
    }
    const std::string coverage =
        scenario.targets_replica
            ? std::to_string(detected) + "/" + std::to_string(kCampaignRuns)
            : "n/a";
    table.add_row({scenario.mode, scenario.param, coverage,
                   std::to_string(false_conv),
                   latency_ms.empty() ? "-"
                                      : ms(latency_ms.mean()) + " / " + ms(latency_ms.max()),
                   ms(rtc::to_ms(bound)), std::to_string(restarts),
                   std::to_string(degraded), std::to_string(corrupt),
                   std::to_string(gap_runs),
                   util::format_double(throughput.mean(), 1)});
    csv.add_row({scenario.mode, scenario.param, std::to_string(kCampaignRuns),
                 std::to_string(detected), std::to_string(false_conv),
                 latency_ms.empty() ? "" : util::format_double(latency_ms.mean(), 3),
                 latency_ms.empty() ? "" : util::format_double(latency_ms.max(), 3),
                 util::format_double(rtc::to_ms(bound), 3), std::to_string(restarts),
                 std::to_string(degraded), std::to_string(corrupt),
                 std::to_string(gap_runs), std::to_string(dup_runs),
                 util::format_double(throughput.mean(), 1)});
  }

  std::cout << table << "\n";
  std::cout << "Nominal consumer throughput is 100 tok/s (10 ms period); the\n"
               "throughput column is measured over the final 500 ms, i.e. after\n"
               "recovery (or degradation to single-replica pass-through).\n\n";
  if (csv.write_file(csv_path)) {
    // stderr, like the wall clock: the path varies across invocations while
    // stdout must stay byte-diffable between job counts.
    std::cerr << "Series written to " << csv_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace sccft::bench

int main(int argc, char** argv) {
  sccft::util::CliParser cli("fault_campaign",
                             "Expanded fault-model campaign under supervision");
  sccft::util::add_jobs_flag(cli);
  cli.add_flag("csv", "/tmp/sccft_fault_campaign.csv", "output CSV path");
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n" << cli.usage();
    return 2;
  }
  if (cli.help_requested()) {
    std::cout << cli.usage();
    return 0;
  }
  return sccft::bench::run(sccft::util::get_jobs(cli), cli.get("csv"));
}
