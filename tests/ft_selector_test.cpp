// SelectorChannel unit tests: rules 1-3 of Section 3.1, Lemma 1 isolation,
// the stall and divergence detectors of Section 3.3, and failover integrity.
#include <gtest/gtest.h>

#include <vector>

#include "ft/selector.hpp"
#include "kpn/network.hpp"
#include "kpn/process.hpp"

namespace sccft::ft {
namespace {

using kpn::Token;

Token make_token(std::uint64_t seq) {
  return Token(std::vector<std::uint8_t>{static_cast<std::uint8_t>(seq & 0xFF),
                                         static_cast<std::uint8_t>(seq >> 8)},
               seq, 0);
}

struct Fixture {
  sim::Simulator sim;
  kpn::Network net{sim};
  SelectorChannel* selector = nullptr;

  explicit Fixture(SelectorChannel::Config config) {
    selector = &net.adopt_channel(
        std::make_unique<SelectorChannel>(sim, "sel", std::move(config)));
  }
};

SelectorChannel::Config basic_config() {
  return SelectorChannel::Config{.capacity1 = 4,
                                 .capacity2 = 6,
                                 .initial1 = 2,
                                 .initial2 = 3,
                                 .divergence_threshold = 4};
}

TEST(Selector, InitialSpacePerRule1WithInitialTokens) {
  Fixture fx(basic_config());
  EXPECT_EQ(fx.selector->space(ReplicaIndex::kReplica1), 2);  // |S1| - |S1|_0
  EXPECT_EQ(fx.selector->space(ReplicaIndex::kReplica2), 3);
  EXPECT_EQ(fx.selector->fill(), 0);
}

TEST(Selector, FirstOfPairEnqueuedDuplicateDropped) {
  Fixture fx(basic_config());
  auto& w1 = fx.selector->write_interface(ReplicaIndex::kReplica1);
  auto& w2 = fx.selector->write_interface(ReplicaIndex::kReplica2);

  EXPECT_TRUE(w1.try_write(make_token(0)));  // first of pair 0 -> enqueued
  EXPECT_EQ(fx.selector->fill(), 1);
  EXPECT_TRUE(w2.try_write(make_token(0)));  // late duplicate -> dropped
  EXPECT_EQ(fx.selector->fill(), 1);
  EXPECT_EQ(fx.selector->stats().tokens_dropped, 1u);

  // Replica 2 first for pair 1:
  EXPECT_TRUE(w2.try_write(make_token(1)));
  EXPECT_EQ(fx.selector->fill(), 2);
  EXPECT_TRUE(w1.try_write(make_token(1)));
  EXPECT_EQ(fx.selector->fill(), 2);  // dropped
}

TEST(Selector, ReadIncrementsBothSpaces) {
  Fixture fx(basic_config());
  auto& w1 = fx.selector->write_interface(ReplicaIndex::kReplica1);
  (void)w1.try_write(make_token(0));
  EXPECT_EQ(fx.selector->space(ReplicaIndex::kReplica1), 1);
  EXPECT_EQ(fx.selector->space(ReplicaIndex::kReplica2), 3);
  auto token = fx.selector->try_read();
  ASSERT_TRUE(token.has_value());
  EXPECT_EQ(token->seq(), 0u);
  EXPECT_EQ(fx.selector->space(ReplicaIndex::kReplica1), 2);
  EXPECT_EQ(fx.selector->space(ReplicaIndex::kReplica2), 4);
}

TEST(Selector, WriterBlocksWhenOwnSpaceExhausted) {
  // Lemma 1: interface 1 blocks iff space_1 == 0, independent of interface 2.
  auto config = basic_config();
  config.divergence_threshold = 0;  // isolate the blocking behaviour
  Fixture fx(config);
  auto& w1 = fx.selector->write_interface(ReplicaIndex::kReplica1);
  EXPECT_TRUE(w1.try_write(make_token(0)));
  EXPECT_TRUE(w1.try_write(make_token(1)));
  EXPECT_EQ(fx.selector->space(ReplicaIndex::kReplica1), 0);
  EXPECT_FALSE(w1.try_write(make_token(2)));  // blocks
  // Interface 2 is entirely unaffected (isolation).
  auto& w2 = fx.selector->write_interface(ReplicaIndex::kReplica2);
  EXPECT_TRUE(w2.try_write(make_token(0)));
  EXPECT_TRUE(w2.try_write(make_token(1)));
  EXPECT_TRUE(w2.try_write(make_token(2)));
  EXPECT_EQ(fx.selector->space(ReplicaIndex::kReplica2), 0);
}

TEST(Selector, StallRuleFlagsLaggingReplica) {
  auto config = basic_config();
  config.divergence_threshold = 0;  // only the stall rule active
  Fixture fx(config);
  auto& w2 = fx.selector->write_interface(ReplicaIndex::kReplica2);
  std::vector<DetectionRecord> records;
  fx.selector->set_fault_observer([&](const DetectionRecord& r) { records.push_back(r); });

  // Replica 1 silent; replica 2 supplies, consumer drains. space_1 grows by
  // one per read; fault when space_1 > |S1| = 4, i.e. on the 3rd read.
  for (std::uint64_t k = 0; k < 3; ++k) {
    ASSERT_TRUE(w2.try_write(make_token(k)));
    ASSERT_TRUE(fx.selector->try_read().has_value());
  }
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].replica, ReplicaIndex::kReplica1);
  EXPECT_EQ(records[0].rule, DetectionRule::kSelectorStall);
}

TEST(Selector, DivergenceRuleFlagsSilentReplica) {
  auto config = basic_config();
  config.enable_stall_rule = false;  // only the divergence rule active
  Fixture fx(config);
  auto& w2 = fx.selector->write_interface(ReplicaIndex::kReplica2);
  std::vector<DetectionRecord> records;
  fx.selector->set_fault_observer([&](const DetectionRecord& r) { records.push_back(r); });

  // Replica 2 delivers; replica 1 silent. Fault when W2 - W1 >= D = 4.
  for (std::uint64_t k = 0; k < 4; ++k) {
    ASSERT_TRUE(w2.try_write(make_token(k)));
    (void)fx.selector->try_read();  // keep space_2 from exhausting
  }
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].replica, ReplicaIndex::kReplica1);
  EXPECT_EQ(records[0].rule, DetectionRule::kSelectorDivergence);
  EXPECT_TRUE(fx.selector->fault(ReplicaIndex::kReplica1));
}

TEST(Selector, NoFalsePositiveWithinThreshold) {
  Fixture fx(basic_config());
  auto& w1 = fx.selector->write_interface(ReplicaIndex::kReplica1);
  auto& w2 = fx.selector->write_interface(ReplicaIndex::kReplica2);
  // Replica 1 leads replica 2 by up to D-1 = 3 tokens, legally.
  for (std::uint64_t k = 0; k < 3; ++k) {
    ASSERT_TRUE(w1.try_write(make_token(k)));
    (void)fx.selector->try_read();
  }
  for (std::uint64_t k = 0; k < 3; ++k) ASSERT_TRUE(w2.try_write(make_token(k)));
  EXPECT_FALSE(fx.selector->fault(ReplicaIndex::kReplica1));
  EXPECT_FALSE(fx.selector->fault(ReplicaIndex::kReplica2));
}

TEST(Selector, FailoverLosesNoToken) {
  // Replica 1 leads, replica 2 trails by 2 pairs; replica 1 dies after pair
  // 4; replica 2 catches up and carries on. The consumer must see
  // 0,1,2,... with no gap and no duplicate across the failover.
  auto config = basic_config();
  Fixture fx(config);
  auto& w1 = fx.selector->write_interface(ReplicaIndex::kReplica1);
  auto& w2 = fx.selector->write_interface(ReplicaIndex::kReplica2);
  std::vector<std::uint64_t> consumed;
  auto drain = [&] {
    while (auto token = fx.selector->try_read()) consumed.push_back(token->seq());
  };
  // Interleaved healthy phase: w1 delivers k, w2 delivers k-2.
  for (std::uint64_t k = 0; k < 5; ++k) {
    ASSERT_TRUE(w1.try_write(make_token(k)));
    drain();
    if (k >= 2) {
      ASSERT_TRUE(w2.try_write(make_token(k - 2)));  // late duplicates
      drain();
    }
  }
  // Replica 1 dies here (last delivered pair: 4; replica 2 delivered 0..2).
  // Replica 2 continues: 3, 4 are duplicates, 5.. are fresh.
  for (std::uint64_t k = 3; k < 10; ++k) {
    ASSERT_TRUE(w2.try_write(make_token(k)));
    drain();
  }
  ASSERT_EQ(consumed.size(), 10u);
  for (std::uint64_t k = 0; k < 10; ++k) EXPECT_EQ(consumed[k], k) << "gap at " << k;
  // The (correct) detection blames replica 1.
  EXPECT_FALSE(fx.selector->fault(ReplicaIndex::kReplica2));
}

TEST(Selector, FaultyInterfaceWritesAcceptedAndDropped) {
  auto config = basic_config();
  config.enable_stall_rule = false;
  Fixture fx(config);
  auto& w1 = fx.selector->write_interface(ReplicaIndex::kReplica1);
  auto& w2 = fx.selector->write_interface(ReplicaIndex::kReplica2);
  for (std::uint64_t k = 0; k < 4; ++k) {
    ASSERT_TRUE(w2.try_write(make_token(k)));
    (void)fx.selector->try_read();
  }
  ASSERT_TRUE(fx.selector->fault(ReplicaIndex::kReplica1));
  const auto fill_before = fx.selector->fill();
  // A zombie write from the faulty replica neither blocks nor enqueues.
  EXPECT_TRUE(w1.try_write(make_token(99)));
  EXPECT_EQ(fx.selector->fill(), fill_before);
}

TEST(Selector, PreloadedInitialTokensReadFirst) {
  auto config = basic_config();
  Fixture fx(config);
  fx.selector->preload_initial_tokens(Token{});
  EXPECT_EQ(fx.selector->fill(), 3);  // max(|S1|_0, |S2|_0)
  auto& w1 = fx.selector->write_interface(ReplicaIndex::kReplica1);
  ASSERT_TRUE(w1.try_write(make_token(7)));
  // Reads: 3 preload markers first, then the data token.
  for (int i = 0; i < 3; ++i) {
    auto token = fx.selector->try_read();
    ASSERT_TRUE(token.has_value());
    EXPECT_EQ(token->size_bytes(), 0);
  }
  auto data = fx.selector->try_read();
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(data->seq(), 7u);
}

TEST(Selector, MaxObservedFillExcludesPreload) {
  auto config = basic_config();
  Fixture fx(config);
  fx.selector->preload_initial_tokens(Token{});
  auto& w1 = fx.selector->write_interface(ReplicaIndex::kReplica1);
  ASSERT_TRUE(w1.try_write(make_token(0)));
  EXPECT_EQ(fx.selector->max_observed_fill(ReplicaIndex::kReplica1), 1);
  EXPECT_EQ(fx.selector->max_observed_fill(ReplicaIndex::kReplica2), 0);
}

TEST(Selector, InvalidConfigRejected) {
  sim::Simulator sim;
  EXPECT_THROW(SelectorChannel(sim, "s", {.capacity1 = 0, .capacity2 = 1}),
               util::ContractViolation);
  EXPECT_THROW(SelectorChannel(sim, "s",
                               {.capacity1 = 2, .capacity2 = 2, .initial1 = 3}),
               util::ContractViolation);
}

TEST(Selector, ControlMemorySmall) {
  Fixture fx(basic_config());
  // Paper Table 2: ~2.1 KB of control structures at the selector.
  EXPECT_LT(fx.selector->control_memory_bytes(), 2'560u);
}

}  // namespace
}  // namespace sccft::ft
