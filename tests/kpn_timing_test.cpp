// TimingShaper property tests: shaped emission streams must provably satisfy
// the PJD arrival curves the sizing analysis assumes (the load-bearing
// assumption of the whole framework).
#include <gtest/gtest.h>

#include <vector>

#include "kpn/timing.hpp"
#include "rtc/calibration.hpp"
#include "rtc/pjd.hpp"
#include "util/assert.hpp"

namespace sccft::kpn {
namespace {

using rtc::PJD;
using rtc::TimeNs;

std::vector<TimeNs> shape_stream(const PJD& model, std::uint64_t seed, int count,
                                 TimeNs ready_lag = 0) {
  util::Xoshiro256 rng(seed);
  TimingShaper shaper(model, 0, rng);
  std::vector<TimeNs> emissions;
  TimeNs now = 0;
  for (int i = 0; i < count; ++i) {
    const TimeNs t = shaper.next_emission(now);
    emissions.push_back(t);
    shaper.commit(t);
    now = t + ready_lag;  // process becomes ready again after `ready_lag`
  }
  return emissions;
}

struct ShaperCase {
  PJD model;
  std::uint64_t seed;
};

class ShaperConformance : public ::testing::TestWithParam<ShaperCase> {};

TEST_P(ShaperConformance, StreamSatisfiesItsOwnCurves) {
  const auto& param = GetParam();
  const auto emissions = shape_stream(param.model, param.seed, 400);
  rtc::PJDUpperCurve upper(param.model);
  rtc::PJDLowerCurve lower(param.model);
  EXPECT_TRUE(rtc::curves_bound_trace(upper, lower, emissions))
      << "shaped stream violates its own PJD curves for " << param.model.to_string();
}

TEST_P(ShaperConformance, EmissionsMonotone) {
  const auto emissions = shape_stream(GetParam().model, GetParam().seed, 300);
  for (std::size_t i = 1; i < emissions.size(); ++i) {
    EXPECT_LE(emissions[i - 1], emissions[i]);
  }
}

TEST_P(ShaperConformance, EmissionsWithinJitterEnvelope) {
  const auto& model = GetParam().model;
  const auto emissions = shape_stream(model, GetParam().seed, 300);
  for (std::size_t k = 0; k < emissions.size(); ++k) {
    const TimeNs nominal = model.delay + static_cast<TimeNs>(k) * model.period;
    EXPECT_GE(emissions[k], nominal) << "token " << k << " too early";
    EXPECT_LE(emissions[k], nominal + model.jitter) << "token " << k << " too late";
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperModels, ShaperConformance,
    ::testing::Values(ShaperCase{PJD::from_ms(30, 2, 30), 1},
                      ShaperCase{PJD::from_ms(30, 5, 30), 2},
                      ShaperCase{PJD::from_ms(30, 30, 30), 3},
                      ShaperCase{PJD::from_ms(6.3, 0.1, 6.3), 4},
                      ShaperCase{PJD::from_ms(6.3, 0.8, 6.3), 5},
                      ShaperCase{PJD::from_ms(6.3, 12.6, 6.3), 6},
                      ShaperCase{PJD::from_ms(30, 1, 30), 7},
                      ShaperCase{PJD::from_ms(30, 20, 30), 8},
                      ShaperCase{PJD::from_ms(10, 0, 0), 9},
                      ShaperCase{PJD::from_ms(5, 50, 0), 10}));

TEST(TimingShaper, DelayShiftsFirstEmission) {
  util::Xoshiro256 rng(1);
  TimingShaper shaper(PJD::from_ms(10, 0, 30), 0, rng);
  EXPECT_EQ(shaper.next_emission(0), rtc::from_ms(30.0));
}

TEST(TimingShaper, AnchorShiftsWholeStream) {
  util::Xoshiro256 rng1(1), rng2(1);
  TimingShaper a(PJD::from_ms(10, 0, 0), 0, rng1);
  TimingShaper b(PJD::from_ms(10, 0, 0), rtc::from_ms(7.0), rng2);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(a.next_emission(0) + rtc::from_ms(7.0), b.next_emission(0));
  }
}

TEST(TimingShaper, LateReadyPushesEmission) {
  util::Xoshiro256 rng(1);
  TimingShaper shaper(PJD::from_ms(10, 1, 0), 0, rng);
  const TimeNs t = shaper.next_emission(rtc::from_ms(55.0));
  EXPECT_GE(t, rtc::from_ms(55.0));  // cannot emit before ready
}

TEST(TimingShaper, CommitKeepsMonotone) {
  util::Xoshiro256 rng(1);
  TimingShaper shaper(PJD::from_ms(10, 1, 0), 0, rng);
  (void)shaper.next_emission(0);
  shaper.commit(rtc::from_ms(100.0));  // actual event far later than target
  const TimeNs next = shaper.next_emission(0);
  EXPECT_GE(next, rtc::from_ms(100.0));
}

TEST(TimingShaper, EmittedCounts) {
  util::Xoshiro256 rng(1);
  TimingShaper shaper(PJD::from_ms(10, 0, 0), 0, rng);
  EXPECT_EQ(shaper.emitted(), 0u);
  (void)shaper.next_emission(0);
  (void)shaper.next_emission(0);
  EXPECT_EQ(shaper.emitted(), 2u);
}

TEST(TimingShaper, InvalidModelRejected) {
  util::Xoshiro256 rng(1);
  EXPECT_THROW(TimingShaper(PJD{0, 0, 0}, 0, rng), util::ContractViolation);
}

// The cross-stream property the sizing relies on: a consumer stream shaped
// with jitter J_c >= J_p + margin, consuming (blocking) from a producer
// stream with jitter J_p, still conforms to the consumer's own curves.
TEST(TimingShaper, BlockingConsumptionStillConforms) {
  const PJD producer_model = PJD::from_ms(10, 2, 10);
  const PJD consumer_model = PJD::from_ms(10, 6, 10);
  util::Xoshiro256 prod_rng(11), cons_rng(12);
  TimingShaper producer(producer_model, 0, prod_rng);
  TimingShaper consumer(consumer_model, 0, cons_rng);

  std::vector<TimeNs> consumption;
  TimeNs producer_time = 0;
  for (int k = 0; k < 400; ++k) {
    producer_time = producer.next_emission(producer_time);
    producer.commit(producer_time);
    const TimeNs arrival = producer_time + rtc::from_us(50);  // transfer latency
    const TimeNs slot = consumer.next_emission(0);
    const TimeNs actual = std::max(slot, arrival);  // blocking read
    consumer.commit(actual);
    consumption.push_back(actual);
  }
  rtc::PJDUpperCurve upper(consumer_model);
  rtc::PJDLowerCurve lower(consumer_model);
  EXPECT_TRUE(rtc::curves_bound_trace(upper, lower, consumption));
}

}  // namespace
}  // namespace sccft::kpn
