// Baremetal boot-sequence tests (paper Section 4.1 fidelity).
#include <gtest/gtest.h>

#include "scc/baremetal.hpp"
#include "util/assert.hpp"

namespace sccft::scc {
namespace {

TEST(BaremetalBoot, AllCoresComeUpStaggered) {
  sim::Simulator sim;
  Platform platform(sim);
  const auto report = baremetal_boot(platform);
  ASSERT_EQ(report.core_ready_at.size(), static_cast<std::size_t>(kCoreCount));
  for (int core = 1; core < kCoreCount; ++core) {
    EXPECT_GT(report.core_ready_at[static_cast<std::size_t>(core)],
              report.core_ready_at[static_cast<std::size_t>(core - 1)])
        << "core " << core << " not released after its predecessor";
  }
}

TEST(BaremetalBoot, BarrierAfterLastCore) {
  sim::Simulator sim;
  Platform platform(sim);
  const auto report = baremetal_boot(platform);
  EXPECT_GT(report.sync_barrier_at, report.core_ready_at.back());
  EXPECT_EQ(sim.now(), report.sync_barrier_at);
}

TEST(BaremetalBoot, ClocksAgreeAfterSync) {
  sim::Simulator sim;
  Platform platform(sim);
  const auto report = baremetal_boot(platform);
  // Paper: clocks synchronized at application boot. Residual skew is only
  // rounding (a few ns), despite per-core drift/offset before boot.
  EXPECT_LE(report.max_skew_after_sync, 5);
  for (int core = 0; core < kCoreCount; ++core) {
    EXPECT_NEAR(static_cast<double>(platform.local_time(CoreId{core})),
                static_cast<double>(sim.now()), 5.0);
  }
}

TEST(BaremetalBoot, PaperConfigurationApplied) {
  sim::Simulator sim;
  Platform platform(sim);
  const auto report = baremetal_boot(platform);
  EXPECT_TRUE(report.l2_disabled);
  EXPECT_TRUE(report.interrupts_disabled);
}

TEST(BaremetalBoot, CustomStaggerRespected) {
  sim::Simulator sim;
  Platform platform(sim);
  BaremetalConfig config;
  config.core_release_stagger = rtc::from_us(100);
  config.per_core_init = rtc::from_us(300);
  const auto report = baremetal_boot(platform, config);
  EXPECT_EQ(report.core_ready_at[0], rtc::from_us(300));
  EXPECT_EQ(report.core_ready_at[1], rtc::from_us(400));
  EXPECT_EQ(report.core_ready_at.back(),
            rtc::from_us(300) + 47 * rtc::from_us(100));
}

TEST(BaremetalBoot, InvalidConfigRejected) {
  sim::Simulator sim;
  Platform platform(sim);
  BaremetalConfig config;
  config.per_core_init = -1;
  EXPECT_THROW((void)baremetal_boot(platform, config), util::ContractViolation);
}

}  // namespace
}  // namespace sccft::scc
