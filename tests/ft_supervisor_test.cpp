// Supervisor tests: detections auto-trigger restart + reintegration with
// backoff, detection latency stays within the analytic Eq. (6)-(8) bound,
// exhausted restart budgets degrade gracefully (network keeps draining), and
// the health state machine leaves a faithful transition trace.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "ft/fault_plan.hpp"
#include "ft/framework.hpp"
#include "ft/supervisor.hpp"
#include "kpn/network.hpp"
#include "kpn/timing.hpp"
#include "scc/watchdog.hpp"
#include "trace/bus.hpp"

namespace sccft::ft {
namespace {

struct Rig {
  sim::Simulator simulator;
  kpn::Network net{simulator};
  ft::AppTimingSpec timing;
  std::optional<FaultTolerantHarness> harness;
  std::vector<kpn::Process*> replicas;
  std::vector<std::uint64_t> consumed;
  bool gap = false;
  bool duplicate = false;
  std::uint64_t corrupt_delivered = 0;

  Rig() {
    timing.producer = rtc::PJD::from_ms(10, 1, 10);
    timing.replica1_in = timing.replica1_out = rtc::PJD::from_ms(10, 2, 10);
    timing.replica2_in = timing.replica2_out = rtc::PJD::from_ms(10, 6, 10);
    timing.consumer = rtc::PJD::from_ms(10, 1, 10);
    harness.emplace(net, FaultTolerantHarness::Config{.timing = timing});

    net.add_process("producer", scc::CoreId{0}, 1,
                    [this](kpn::ProcessContext& ctx) -> sim::Task {
                      kpn::TimingShaper shaper(timing.producer, 0, ctx.rng());
                      for (std::uint64_t k = 0;; ++k) {
                        const rtc::TimeNs t = shaper.next_emission(ctx.now());
                        if (t > ctx.now()) co_await ctx.delay(t - ctx.now());
                        std::vector<std::uint8_t> payload(4, static_cast<std::uint8_t>(k));
                        co_await kpn::write(harness->replicator(),
                                            kpn::Token(std::move(payload), k, ctx.now()));
                        shaper.commit(ctx.now());
                      }
                    });

    auto replica_body = [this](ReplicaIndex which, rtc::PJD model) {
      return [this, which, model](kpn::ProcessContext& ctx) -> sim::Task {
        kpn::TimingShaper emit(model, ctx.now(), ctx.rng());
        while (true) {
          SCCFT_FAULT_GATE(ctx);
          kpn::Token token =
              co_await kpn::read(harness->replicator().read_interface(which));
          SCCFT_FAULT_GATE(ctx);
          const rtc::TimeNs t = emit.next_emission(ctx.now());
          if (t > ctx.now()) co_await ctx.compute(t - ctx.now());
          SCCFT_FAULT_GATE(ctx);
          co_await kpn::write(harness->selector().write_interface(which), token);
          emit.commit(ctx.now());
        }
      };
    };
    replicas.push_back(&net.add_process(
        "r1", scc::CoreId{2}, 2, replica_body(ReplicaIndex::kReplica1, timing.replica1_out)));
    replicas.push_back(&net.add_process(
        "r2", scc::CoreId{4}, 3, replica_body(ReplicaIndex::kReplica2, timing.replica2_out)));

    net.add_process("consumer", scc::CoreId{6}, 4,
                    [this](kpn::ProcessContext& ctx) -> sim::Task {
                      kpn::TimingShaper shaper(timing.consumer, 0, ctx.rng());
                      std::uint64_t expected = 0;
                      while (true) {
                        const rtc::TimeNs t = shaper.next_emission(ctx.now());
                        if (t > ctx.now()) co_await ctx.delay(t - ctx.now());
                        kpn::Token token = co_await kpn::read(harness->selector());
                        shaper.commit(ctx.now());
                        if (token.seq() > expected) gap = true;
                        if (token.seq() < expected) duplicate = true;
                        if (!token.verify_checksum()) ++corrupt_delivered;
                        expected = token.seq() + 1;
                        consumed.push_back(token.seq());
                      }
                    });
  }

  [[nodiscard]] std::array<ReplicaAssets, 2> assets() {
    return {ReplicaAssets{ReplicaIndex::kReplica1, {replicas[0]}, {}},
            ReplicaAssets{ReplicaIndex::kReplica2, {replicas[1]}, {}}};
  }

  [[nodiscard]] FaultCampaign::Wiring wiring() {
    FaultCampaign::Wiring w;
    w.replicator = &harness->replicator();
    w.selector = &harness->selector();
    w.processes[0] = {replicas[0]};
    w.processes[1] = {replicas[1]};
    return w;
  }

  /// The tightest analytic detection bound applicable to a silence fault.
  [[nodiscard]] rtc::TimeNs detection_bound() const {
    return std::min(harness->sizing().replicator_overflow_bound,
                    harness->sizing().selector_latency_bound);
  }
};

void wire(Supervisor& supervisor, FaultCampaign& campaign) {
  campaign.set_injection_listener([&supervisor](const FaultInjectionRecord& rec) {
    supervisor.note_fault_injected(rec.replica, rec.at);
  });
}

TEST(Supervisor, SilenceFaultIsAutoRecoveredWithinTheAnalyticBound) {
  Rig rig;
  Supervisor supervisor(rig.simulator, rig.harness->replicator(),
                        rig.harness->selector(), rig.assets(),
                        {.restart_budget = 3,
                         .initial_backoff = rtc::from_ms(20.0),
                         .detection_latency_bound = rig.detection_bound()});
  FaultCampaign campaign(rig.simulator, rig.wiring());
  wire(supervisor, campaign);
  campaign.add({.kind = FaultKind::kPermanentSilence,
                .replica = ReplicaIndex::kReplica1,
                .at = rtc::from_ms(300.0)});
  campaign.arm();
  rig.net.run_until(rtc::from_sec(2.0));

  // The fault was detected, the replica restarted, and it is healthy again.
  const auto& report = supervisor.report(ReplicaIndex::kReplica1);
  EXPECT_EQ(report.health, ReplicaHealth::kHealthy);
  EXPECT_EQ(report.faults_seen, 1u);
  EXPECT_EQ(report.restarts, 1);
  ASSERT_EQ(report.detection_latencies.size(), 1u);
  EXPECT_LE(report.detection_latencies[0], rig.detection_bound());
  EXPECT_EQ(report.detections_within_bound, 1u);
  ASSERT_TRUE(report.mean_time_to_repair().has_value());
  EXPECT_GE(*report.mean_time_to_repair(), rtc::from_ms(20.0));  // backoff floor

  // Stream integrity across fault + automatic repair.
  EXPECT_FALSE(rig.gap);
  EXPECT_FALSE(rig.duplicate);
  EXPECT_GT(rig.consumed.size(), 180u);
  // The repaired replica participates again.
  EXPECT_FALSE(rig.harness->selector().fault(ReplicaIndex::kReplica1));
  EXPECT_FALSE(rig.harness->replicator().fault(ReplicaIndex::kReplica1));
  // The untouched replica was never suspected.
  EXPECT_EQ(supervisor.report(ReplicaIndex::kReplica2).faults_seen, 0u);

  // Transition trace: healthy -> convicted -> restarting -> healthy.
  std::vector<ReplicaHealth> seen;
  for (const auto& t : supervisor.transitions()) {
    ASSERT_EQ(t.replica, ReplicaIndex::kReplica1);
    seen.push_back(t.to);
  }
  EXPECT_EQ(seen, (std::vector<ReplicaHealth>{ReplicaHealth::kConvicted,
                                              ReplicaHealth::kRestarting,
                                              ReplicaHealth::kHealthy}));

  // The report is a view of the metrics registry — the registry's raw
  // counters/series must agree with it field for field.
  const auto& metrics = rig.simulator.trace().metrics();
  EXPECT_EQ(metrics.counter("supervisor.R1.faults_seen"), report.faults_seen);
  EXPECT_EQ(metrics.counter("supervisor.R1.restarts"),
            static_cast<std::uint64_t>(report.restarts));
  EXPECT_EQ(metrics.counter("supervisor.R1.detections_within_bound"),
            report.detections_within_bound);
  const auto* latencies = metrics.find_series("supervisor.R1.detection_latency_ns");
  ASSERT_NE(latencies, nullptr);
  EXPECT_EQ(latencies->samples(), report.detection_latencies);
  const auto* repairs = metrics.find_series("supervisor.R1.repair_time_ns");
  ASSERT_NE(repairs, nullptr);
  EXPECT_EQ(repairs->samples(), report.repair_times);
  // The never-suspected replica has no registry footprint beyond zeros.
  EXPECT_EQ(metrics.counter("supervisor.R2.faults_seen"), 0u);
  EXPECT_EQ(metrics.counter("supervisor.R2.restarts"), 0u);
}

TEST(Supervisor, RepeatedFaultsAreEachRecoveredUntilBudgetLasts) {
  Rig rig;
  Supervisor supervisor(rig.simulator, rig.harness->replicator(),
                        rig.harness->selector(), rig.assets(),
                        {.restart_budget = 3,
                         .initial_backoff = rtc::from_ms(20.0)});
  FaultCampaign campaign(rig.simulator, rig.wiring());
  wire(supervisor, campaign);
  campaign.add({.kind = FaultKind::kPermanentSilence,
                .replica = ReplicaIndex::kReplica1,
                .at = rtc::from_ms(300.0)});
  campaign.add({.kind = FaultKind::kPermanentSilence,
                .replica = ReplicaIndex::kReplica1,
                .at = rtc::from_ms(1'000.0)});
  campaign.arm();
  rig.net.run_until(rtc::from_sec(2.0));

  const auto& report = supervisor.report(ReplicaIndex::kReplica1);
  EXPECT_EQ(report.health, ReplicaHealth::kHealthy);
  EXPECT_EQ(report.faults_seen, 2u);
  EXPECT_EQ(report.restarts, 2);
  EXPECT_FALSE(rig.gap);
  EXPECT_FALSE(rig.duplicate);
  EXPECT_GT(rig.consumed.size(), 180u);
  // Backoff grew: the second repair waited at least factor x initial.
  ASSERT_EQ(report.repair_times.size(), 2u);
  EXPECT_GE(report.repair_times[1], rtc::from_ms(40.0));
}

TEST(Supervisor, ExhaustedBudgetDegradesGracefullyAndNetworkKeepsDraining) {
  Rig rig;
  Supervisor supervisor(rig.simulator, rig.harness->replicator(),
                        rig.harness->selector(), rig.assets(),
                        {.restart_budget = 1,
                         .initial_backoff = rtc::from_ms(20.0)});
  FaultCampaign campaign(rig.simulator, rig.wiring());
  wire(supervisor, campaign);
  campaign.add({.kind = FaultKind::kPermanentSilence,
                .replica = ReplicaIndex::kReplica1,
                .at = rtc::from_ms(300.0)});
  campaign.add({.kind = FaultKind::kPermanentSilence,
                .replica = ReplicaIndex::kReplica1,
                .at = rtc::from_ms(800.0)});
  campaign.arm();

  std::size_t consumed_at_degradation = 0;
  rig.simulator.schedule_at(rtc::from_sec(1.2), [&] {
    consumed_at_degradation = rig.consumed.size();
  });
  rig.net.run_until(rtc::from_sec(2.0));

  // Budget spent on the first fault; the second one degrades the replica.
  const auto& report = supervisor.report(ReplicaIndex::kReplica1);
  EXPECT_EQ(report.health, ReplicaHealth::kDegraded);
  EXPECT_EQ(report.restarts, 1);
  EXPECT_EQ(report.faults_seen, 2u);
  EXPECT_TRUE(supervisor.any_replica_serviceable());
  EXPECT_EQ(supervisor.health(ReplicaIndex::kReplica2), ReplicaHealth::kHealthy);

  // Graceful degradation: no deadlock — the network kept draining on the
  // remaining replica long after the budget ran out, with no token lost.
  EXPECT_GT(rig.consumed.size(), consumed_at_degradation + 50);
  EXPECT_FALSE(rig.gap);
  EXPECT_FALSE(rig.duplicate);
  EXPECT_GT(rig.consumed.size(), 180u);

  // The trace ends in the terminal degraded state.
  ASSERT_FALSE(supervisor.transitions().empty());
  EXPECT_EQ(supervisor.transitions().back().to, ReplicaHealth::kDegraded);
}

TEST(Supervisor, PersistentCorruptionFlapsUntilDegradedWithZeroFalseConvictions) {
  Rig rig;
  Supervisor supervisor(rig.simulator, rig.harness->replicator(),
                        rig.harness->selector(), rig.assets(),
                        {.restart_budget = 2,
                         .initial_backoff = rtc::from_ms(20.0)});
  FaultCampaign campaign(rig.simulator, rig.wiring());
  wire(supervisor, campaign);
  // Corruption with no end time: the tamper survives restarts (the "repair"
  // does not fix the broken core), so the replica flaps until its budget is
  // gone and it is retired.
  campaign.add({.kind = FaultKind::kPayloadCorruption,
                .replica = ReplicaIndex::kReplica2,
                .at = rtc::from_ms(300.0),
                .corrupt_probability = 1.0,
                .seed = 11});
  campaign.arm();
  rig.net.run_until(rtc::from_sec(3.0));

  const auto& report = supervisor.report(ReplicaIndex::kReplica2);
  EXPECT_EQ(report.health, ReplicaHealth::kDegraded);
  EXPECT_EQ(report.restarts, 2);
  EXPECT_EQ(report.faults_seen, 3u);  // convicted once per restart cycle

  // Detection quality: the consumer never saw a corrupted payload, never
  // missed a token, and the healthy replica was never falsely convicted.
  EXPECT_EQ(rig.corrupt_delivered, 0u);
  EXPECT_FALSE(rig.gap);
  EXPECT_FALSE(rig.duplicate);
  EXPECT_GT(rig.consumed.size(), 280u);
  EXPECT_EQ(supervisor.report(ReplicaIndex::kReplica1).faults_seen, 0u);
  EXPECT_EQ(supervisor.health(ReplicaIndex::kReplica1), ReplicaHealth::kHealthy);
}

TEST(Supervisor, TransientFaultBelowDetectionRadarNeedsNoRestart) {
  Rig rig;
  Supervisor supervisor(rig.simulator, rig.harness->replicator(),
                        rig.harness->selector(), rig.assets(),
                        {.restart_budget = 3,
                         .initial_backoff = rtc::from_ms(20.0)});
  FaultCampaign campaign(rig.simulator, rig.wiring());
  wire(supervisor, campaign);
  // A 15 ms hiccup is absorbed by the queues sized per Eq. (3)-(5): no
  // detection rule fires, so the supervisor must stay entirely quiet.
  campaign.add({.kind = FaultKind::kTransientSilence,
                .replica = ReplicaIndex::kReplica1,
                .at = rtc::from_ms(300.0),
                .duration = rtc::from_ms(15.0)});
  campaign.arm();
  rig.net.run_until(rtc::from_sec(1.0));

  EXPECT_EQ(supervisor.report(ReplicaIndex::kReplica1).restarts, 0);
  EXPECT_TRUE(supervisor.transitions().empty());
  EXPECT_FALSE(rig.gap);
  EXPECT_FALSE(rig.duplicate);
  EXPECT_GT(rig.consumed.size(), 80u);
}

// --- heartbeat beacon + hang / watchdog interplay --------------------------

struct HeartbeatLog : trace::Sink {
  std::vector<trace::Event> events;
  void on_event(const trace::Event& event) override { events.push_back(event); }
};

TEST(Supervisor, HeartbeatBeaconIsStrictlyMonotoneAndMatchesTheCounter) {
  Rig rig;
  HeartbeatLog log;
  rig.simulator.trace().subscribe(&log,
                                  trace::bit(trace::EventKind::kHeartbeat));
  Supervisor supervisor(rig.simulator, rig.harness->replicator(),
                        rig.harness->selector(), rig.assets(),
                        {.restart_budget = 3,
                         .initial_backoff = rtc::from_ms(20.0),
                         .heartbeat_period = rtc::from_ms(25.0)});
  rig.net.run_until(rtc::from_sec(1.0));

  // ~40 beats in a second; every beat strictly later than the previous one
  // and carrying a strictly increasing beat count.
  EXPECT_EQ(supervisor.heartbeats(), log.events.size());
  EXPECT_GE(log.events.size(), 39u);
  for (std::size_t i = 1; i < log.events.size(); ++i) {
    EXPECT_GT(log.events[i].time, log.events[i - 1].time);
    EXPECT_EQ(log.events[i].a, log.events[i - 1].a + 1);
  }
  // Bus-observer view and registry view agree (the spine oracle's check).
  EXPECT_EQ(rig.simulator.trace().metrics().counter("supervisor.heartbeats"),
            supervisor.heartbeats());
  rig.simulator.trace().unsubscribe(&log);
}

TEST(Supervisor, DisabledHeartbeatKeepsTheSupervisorSilent) {
  Rig rig;
  HeartbeatLog log;
  rig.simulator.trace().subscribe(&log,
                                  trace::bit(trace::EventKind::kHeartbeat));
  Supervisor supervisor(rig.simulator, rig.harness->replicator(),
                        rig.harness->selector(), rig.assets(),
                        {.restart_budget = 3,
                         .initial_backoff = rtc::from_ms(20.0)});
  rig.net.run_until(rtc::from_ms(500.0));
  EXPECT_EQ(supervisor.heartbeats(), 0u);
  EXPECT_TRUE(log.events.empty());
  rig.simulator.trace().unsubscribe(&log);
}

TEST(Supervisor, HangSwallowsTheDetectionUntilTheWatchdogResets) {
  Rig rig;
  Supervisor supervisor(rig.simulator, rig.harness->replicator(),
                        rig.harness->selector(), rig.assets(),
                        {.restart_budget = 3,
                         .initial_backoff = rtc::from_ms(20.0),
                         .heartbeat_period = rtc::from_ms(25.0)});
  scc::WatchdogTimer watchdog(rig.simulator,
                              {.deadline = rtc::from_ms(120.0), .name = "wd"});
  const int channel = watchdog.add_channel(
      "supervisor", scc::TileId{1}, [&] { supervisor.on_self_watchdog_reset(); });
  supervisor.attach_watchdog(&watchdog, channel);
  watchdog.arm_all();

  FaultCampaign::Wiring wiring = rig.wiring();
  wiring.supervisor = &supervisor;
  FaultCampaign campaign(rig.simulator, wiring);
  wire(supervisor, campaign);
  // The supervisor hangs permanently (duration 0: software never clears it)
  // just before R1 falls silent. The detection fires into a deaf supervisor;
  // only the watchdog reset can revive it and re-drive the standing verdict.
  campaign.add({.kind = FaultKind::kSupervisorHang, .at = rtc::from_ms(300.0)});
  campaign.add({.kind = FaultKind::kPermanentSilence,
                .replica = ReplicaIndex::kReplica1,
                .at = rtc::from_ms(350.0)});
  campaign.arm();
  rig.net.run_until(rtc::from_sec(2.0));

  EXPECT_FALSE(supervisor.hung());
  const auto& metrics = rig.simulator.trace().metrics();
  EXPECT_EQ(metrics.counter("supervisor.hangs"), 1u);
  EXPECT_GE(metrics.counter("supervisor.watchdog_resets"), 1u);
  EXPECT_GE(watchdog.resets(channel), 1u);
  // The fault was still recovered end to end, and no token was lost.
  const auto& report = supervisor.report(ReplicaIndex::kReplica1);
  EXPECT_EQ(report.health, ReplicaHealth::kHealthy);
  EXPECT_EQ(report.restarts, 1);
  EXPECT_FALSE(rig.gap);
  EXPECT_FALSE(rig.duplicate);
  // Heartbeats resumed after the reset: the beacon outlived the hang window.
  EXPECT_GT(supervisor.heartbeats(),
            static_cast<std::uint64_t>(300 / 25));  // more than the pre-hang count
}

TEST(Supervisor, BackToBackCoreWatchdogResetsConsumeTheRestartBudget) {
  Rig rig;
  Supervisor supervisor(rig.simulator, rig.harness->replicator(),
                        rig.harness->selector(), rig.assets(),
                        {.restart_budget = 1,
                         .initial_backoff = rtc::from_ms(20.0)});
  // Two hardware reset-line firings against R2, far enough apart that the
  // first recovery completes. Budget 1: the first reset restarts, the second
  // must degrade — the watchdog feeds the same budget as every other rule.
  rig.simulator.schedule_at(rtc::from_ms(300.0), [&] {
    supervisor.on_core_watchdog_reset(ReplicaIndex::kReplica2);
  });
  rig.simulator.schedule_at(rtc::from_ms(900.0), [&] {
    supervisor.on_core_watchdog_reset(ReplicaIndex::kReplica2);
  });
  rig.net.run_until(rtc::from_sec(2.0));

  const auto& report = supervisor.report(ReplicaIndex::kReplica2);
  EXPECT_EQ(report.health, ReplicaHealth::kDegraded);
  EXPECT_EQ(report.restarts, 1);
  EXPECT_EQ(report.faults_seen, 2u);
  // The stream kept draining on the surviving replica.
  EXPECT_FALSE(rig.gap);
  EXPECT_FALSE(rig.duplicate);
  EXPECT_GT(rig.consumed.size(), 180u);
  EXPECT_EQ(supervisor.health(ReplicaIndex::kReplica1), ReplicaHealth::kHealthy);
}

// --- backoff_duration ------------------------------------------------------
// Regression: the old O(restarts) multiply loop overflowed the double to inf
// for large restart counts, and the final cast of an out-of-range double to
// TimeNs is undefined behavior. The closed form must saturate exactly.

TEST(BackoffDuration, SmallCountsFollowTheExponential) {
  const Supervisor::Config config{.initial_backoff = rtc::from_ms(20.0),
                                  .backoff_factor = 2.0,
                                  .max_backoff = rtc::from_ms(500.0)};
  EXPECT_EQ(backoff_duration(config, 0), rtc::from_ms(20.0));
  EXPECT_EQ(backoff_duration(config, 1), rtc::from_ms(40.0));
  EXPECT_EQ(backoff_duration(config, 2), rtc::from_ms(80.0));
  EXPECT_EQ(backoff_duration(config, 3), rtc::from_ms(160.0));
  EXPECT_EQ(backoff_duration(config, 4), rtc::from_ms(320.0));
  EXPECT_EQ(backoff_duration(config, 5), rtc::from_ms(500.0));  // clamped
}

TEST(BackoffDuration, HugeRestartCountsSaturateToMax) {
  const Supervisor::Config config{.initial_backoff = rtc::from_ms(20.0),
                                  .backoff_factor = 2.0,
                                  .max_backoff = rtc::from_ms(500.0)};
  // Anything past the saturation point — including counts whose naive
  // factor^n is far beyond double range — returns max_backoff exactly.
  for (const std::uint64_t restarts :
       {std::uint64_t{64}, std::uint64_t{1'000}, std::uint64_t{1'000'000},
        std::uint64_t{1} << 62, ~std::uint64_t{0}}) {
    EXPECT_EQ(backoff_duration(config, restarts), config.max_backoff)
        << "restarts=" << restarts;
  }
}

TEST(BackoffDuration, MonotoneNonDecreasingInRestarts) {
  const Supervisor::Config config{.initial_backoff = rtc::from_ms(20.0),
                                  .backoff_factor = 1.7,
                                  .max_backoff = rtc::from_ms(500.0)};
  rtc::TimeNs prev = 0;
  for (std::uint64_t restarts = 0; restarts <= 100; ++restarts) {
    const rtc::TimeNs backoff = backoff_duration(config, restarts);
    EXPECT_GE(backoff, prev) << "restarts=" << restarts;
    EXPECT_LE(backoff, config.max_backoff);
    prev = backoff;
  }
  EXPECT_EQ(prev, config.max_backoff);
}

TEST(BackoffDuration, DegenerateConfigsStayClamped) {
  // factor 1.0: constant backoff.
  EXPECT_EQ(backoff_duration({.initial_backoff = rtc::from_ms(20.0),
                              .backoff_factor = 1.0,
                              .max_backoff = rtc::from_ms(500.0)},
                             1'000'000),
            rtc::from_ms(20.0));
  // initial 0: stays 0 forever.
  EXPECT_EQ(backoff_duration({.initial_backoff = 0,
                              .backoff_factor = 2.0,
                              .max_backoff = rtc::from_ms(500.0)},
                             1'000'000),
            0);
  // initial == max: clamped from the first restart.
  EXPECT_EQ(backoff_duration({.initial_backoff = rtc::from_ms(500.0),
                              .backoff_factor = 2.0,
                              .max_backoff = rtc::from_ms(500.0)},
                             1),
            rtc::from_ms(500.0));
}

}  // namespace
}  // namespace sccft::ft
