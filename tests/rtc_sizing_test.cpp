// Tests for the Section 3.4 design-time analysis (Eq. 3-8).
//
// The headline assertions reproduce the *paper's own Table 2 numbers*: with
// the Table 1 timing models, the analysis must yield exactly the FIFO
// capacities and initial-token counts the paper reports for the MJPEG and
// ADPCM applications.
#include <gtest/gtest.h>

#include "apps/adpcm/app.hpp"
#include "apps/h264/app.hpp"
#include "apps/mjpeg/app.hpp"
#include "rtc/pjd.hpp"
#include "rtc/sizing.hpp"

namespace sccft::rtc {
namespace {

using apps::ApplicationSpec;

SizingReport analyze(const ApplicationSpec& app) {
  return analyze_duplicated_network(app.timing.to_model(),
                                    app.timing.default_horizon());
}

// ---- Paper Table 2, MJPEG row: |R1| |R2| |S1| |S2| |S1|_0 |S2|_0 ----------
TEST(SizingPaperNumbers, MjpegCapacitiesMatchTable2) {
  const auto report = analyze(apps::mjpeg::make_application());
  EXPECT_EQ(report.replicator_capacity1, 2);
  EXPECT_EQ(report.replicator_capacity2, 3);
  EXPECT_EQ(report.selector_capacity1, 4);
  EXPECT_EQ(report.selector_capacity2, 6);
  EXPECT_EQ(report.selector_initial1, 2);
  EXPECT_EQ(report.selector_initial2, 3);
}

// ---- Paper Table 2, ADPCM row ----------------------------------------------
TEST(SizingPaperNumbers, AdpcmCapacitiesMatchTable2) {
  const auto report = analyze(apps::adpcm::make_application());
  EXPECT_EQ(report.replicator_capacity1, 2);
  EXPECT_EQ(report.replicator_capacity2, 4);
  EXPECT_EQ(report.selector_capacity1, 4);
  EXPECT_EQ(report.selector_capacity2, 8);
  EXPECT_EQ(report.selector_initial1, 2);
  EXPECT_EQ(report.selector_initial2, 4);
}

TEST(SizingPaperNumbers, MjpegDetectionBoundsAreFiniteAndOrdered) {
  const auto report = analyze(apps::mjpeg::make_application());
  // Selector divergence threshold: sup difference between the replica output
  // curves is 3, so D = 4 and 2D-1 = 7 tokens; the slow replica (jitter =
  // period = 30 ms) yields 30 + 7*30 = 240 ms.
  EXPECT_EQ(report.selector_threshold, 4);
  EXPECT_EQ(report.selector_latency_bound, from_ms(240.0));
  // Replicator overflow rule: producer lower curve reaches |R2|+1 = 4 tokens
  // at 2 + 4*30 = 122 ms.
  EXPECT_EQ(report.replicator_overflow_bound, from_ms(122.0));
  EXPECT_GT(report.replicator_divergence_bound, 0);
}

TEST(SizingPaperNumbers, AdpcmDetectionBounds) {
  const auto report = analyze(apps::adpcm::make_application());
  // D = 5 -> 9 tokens; slow replica: 12.6 + 9*6.3 = 69.3 ms (the paper
  // reports 69.7 ms for its replicator-side divergence bound).
  EXPECT_EQ(report.selector_threshold, 5);
  EXPECT_EQ(report.selector_latency_bound, from_ms(69.3));
}

TEST(SizingPaperNumbers, H264BoundsAsymmetric) {
  const auto report = analyze(apps::h264::make_application());
  // The paper notes the H.264 bounds are asymmetric across channels.
  EXPECT_NE(report.replicator_overflow_bound, report.selector_latency_bound);
  EXPECT_GT(report.selector_threshold, 1);
}

// ---- Eq. (3): FIFO capacity -------------------------------------------------
TEST(MinFifoCapacity, EqualRatesYieldSmallBuffer) {
  const PJD producer = PJD::from_ms(10, 1, 10);
  const PJD consumer = PJD::from_ms(10, 1, 10);
  PJDUpperCurve upper(producer);
  PJDLowerCurve lower(consumer);
  const auto capacity = min_fifo_capacity(upper, lower, from_ms(2000.0));
  ASSERT_TRUE(capacity.has_value());
  EXPECT_GE(*capacity, 1);
  EXPECT_LE(*capacity, 3);
}

TEST(MinFifoCapacity, ProducerFasterThanConsumerIsInfeasible) {
  PJDUpperCurve upper(PJD::from_ms(5, 0, 5));    // 1 token / 5 ms
  PJDLowerCurve lower(PJD::from_ms(10, 0, 10));  // 1 token / 10 ms
  EXPECT_FALSE(min_fifo_capacity(upper, lower, from_ms(2000.0)).has_value());
}

TEST(MinFifoCapacity, GrowsWithConsumerJitter) {
  PJDUpperCurve upper(PJD::from_ms(10, 1, 10));
  Tokens previous = 0;
  for (double jitter : {0.0, 10.0, 20.0, 30.0}) {
    PJDLowerCurve lower(PJD::from_ms(10, jitter, 10));
    const auto capacity = min_fifo_capacity(upper, lower, from_ms(5000.0));
    ASSERT_TRUE(capacity.has_value());
    EXPECT_GE(*capacity, previous);
    previous = *capacity;
  }
}

// ---- Eq. (3) soundness: capacity really prevents overflow -------------------
// Property check: for any conforming producer trace (upper curve) and
// conforming consumer trace (lower curve), backlog never exceeds capacity.
TEST(MinFifoCapacity, CapacityBoundsWorstCaseBacklog) {
  const PJD prod = PJD::from_ms(10, 7, 10);
  const PJD cons = PJD::from_ms(10, 15, 10);
  PJDUpperCurve upper(prod);
  PJDLowerCurve lower(cons);
  const auto capacity = min_fifo_capacity(upper, lower, from_ms(5000.0));
  ASSERT_TRUE(capacity.has_value());
  // Backlog bound = sup(upper - lower) by definition; re-derive it densely on
  // a 0.5 ms grid as an independent oracle.
  Tokens worst = 0;
  for (TimeNs t = 0; t <= from_ms(500.0); t += from_ms(0.5)) {
    worst = std::max(worst, upper.value_at(t) - lower.value_at(t));
  }
  EXPECT_EQ(*capacity, worst);
}

// ---- Eq. (4): initial fill --------------------------------------------------
TEST(MinInitialFill, ZeroWhenProducerAheadOfConsumer) {
  PJDLowerCurve out(PJD::from_ms(10, 0, 10));
  PJDUpperCurve consumer(PJD::from_ms(10, 0, 10));
  const auto fill = min_initial_fill(out, consumer, from_ms(1000.0));
  ASSERT_TRUE(fill.has_value());
  EXPECT_LE(*fill, 1);
}

TEST(MinInitialFill, CoversReplicaJitter) {
  PJDLowerCurve out(PJD::from_ms(10, 30, 10));  // replica 3 periods late
  PJDUpperCurve consumer(PJD::from_ms(10, 0, 10));
  const auto fill = min_initial_fill(out, consumer, from_ms(5000.0));
  ASSERT_TRUE(fill.has_value());
  EXPECT_GE(*fill, 3);  // must pre-buffer ~3 periods
}

// ---- Eq. (5): divergence threshold ------------------------------------------
TEST(DivergenceThreshold, SymmetricReplicas) {
  const PJD model = PJD::from_ms(10, 2, 10);
  PJDUpperCurve upper1(model), upper2(model);
  PJDLowerCurve lower1(model), lower2(model);
  const auto d = divergence_threshold(upper1, lower1, upper2, lower2, from_ms(2000.0));
  ASSERT_TRUE(d.has_value());
  // sup(eta+ - eta-) for <10,2,10> is 1 (ceil((t+2)/10) - floor((t-2)/10)
  // peaks at 2? evaluate: D must be strictly greater than the sup).
  EXPECT_GE(*d, 2);
}

TEST(DivergenceThreshold, GrowsWithAsymmetry) {
  const PJD fast = PJD::from_ms(10, 1, 10);
  Tokens previous = 0;
  for (double jitter : {5.0, 15.0, 25.0, 45.0}) {
    const PJD slow = PJD::from_ms(10, jitter, 10);
    PJDUpperCurve u1(fast), u2(slow);
    PJDLowerCurve l1(fast), l2(slow);
    const auto d = divergence_threshold(u1, l1, u2, l2, from_ms(5000.0));
    ASSERT_TRUE(d.has_value());
    EXPECT_GE(*d, previous);
    previous = *d;
  }
}

TEST(DivergenceThreshold, UnboundedForMismatchedRates) {
  PJDUpperCurve u1(PJD::from_ms(5, 0, 5));
  PJDLowerCurve l1(PJD::from_ms(5, 0, 5));
  PJDUpperCurve u2(PJD::from_ms(10, 0, 10));
  PJDLowerCurve l2(PJD::from_ms(10, 0, 10));
  EXPECT_FALSE(divergence_threshold(u1, l1, u2, l2, from_ms(2000.0)).has_value());
}

// ---- Eq. (6)-(8): detection latency -----------------------------------------
TEST(DetectionLatency, SilenceBoundMatchesClosedForm) {
  // For a PJD lower curve, eta-(Delta) >= 2D-1 first at J + (2D-1)*P.
  const PJD model = PJD::from_ms(10, 4, 10);
  PJDLowerCurve lower(model);
  for (Tokens d = 1; d <= 6; ++d) {
    const auto bound = detection_latency_bound_silence(lower, d, from_ms(5000.0));
    ASSERT_TRUE(bound.has_value());
    EXPECT_EQ(*bound, model.jitter + (2 * d - 1) * model.period) << "D=" << d;
  }
}

TEST(DetectionLatency, ResidualOutputDelaysDetection) {
  PJDLowerCurve healthy(PJD::from_ms(10, 0, 10));
  ZeroCurve dead;
  // Faulty replica still trickling at 1/40ms vs dead silence.
  PJDUpperCurve trickle(PJD::from_ms(40, 0, 40));
  const auto fast = detection_latency_bound(healthy, dead, 3, from_ms(20000.0));
  const auto slow = detection_latency_bound(healthy, trickle, 3, from_ms(20000.0));
  ASSERT_TRUE(fast.has_value());
  ASSERT_TRUE(slow.has_value());
  EXPECT_GT(*slow, *fast);
}

TEST(DetectionLatency, BothAssignmentsTakeTheMax) {
  PJDLowerCurve l1(PJD::from_ms(10, 0, 10));
  PJDLowerCurve l2(PJD::from_ms(10, 50, 10));
  ZeroCurve dead;
  const auto both =
      detection_latency_bound_both(l1, dead, l2, dead, 2, from_ms(20000.0));
  const auto worst = detection_latency_bound_silence(l2, 2, from_ms(20000.0));
  ASSERT_TRUE(both.has_value());
  ASSERT_TRUE(worst.has_value());
  EXPECT_EQ(*both, *worst);
}

TEST(DetectionLatency, RateFaultBoundShrinksWithSeverity) {
  // Eq. (6) with a residual post-fault upper curve: milder degradation
  // (factor closer to 1) takes longer to convict; silence is the limit.
  const PJD model = PJD::from_ms(10, 2, 10);
  PJDLowerCurve healthy(model);
  const TimeNs horizon = from_ms(20000.0);
  TimeNs previous = horizon + 1;
  for (double factor : {1.5, 2.0, 4.0, 8.0}) {
    const auto bound =
        detection_latency_bound_rate_fault(healthy, model, factor, 3, horizon);
    ASSERT_TRUE(bound.has_value()) << "factor " << factor;
    EXPECT_LT(*bound, previous) << "factor " << factor;
    previous = *bound;
  }
  const auto silence = detection_latency_bound_silence(healthy, 3, horizon);
  ASSERT_TRUE(silence.has_value());
  EXPECT_LE(*silence, previous);  // silence detected fastest
}

TEST(DetectionLatency, RateFaultTooMildIsUndetectable) {
  // A replica faster than (or equal to) the healthy one's guaranteed rate
  // never accumulates divergence.
  const PJD slow_healthy = PJD::from_ms(20, 2, 20);
  const PJD fast_faulty = PJD::from_ms(10, 2, 10);
  PJDLowerCurve healthy(slow_healthy);
  // 1.5x slowdown of a 10 ms stream still beats a 20 ms healthy stream.
  EXPECT_FALSE(detection_latency_bound_rate_fault(healthy, fast_faulty, 1.5, 3,
                                                  from_ms(20000.0))
                   .has_value());
}

TEST(DetectionLatency, MonotoneInThreshold) {
  PJDLowerCurve lower(PJD::from_ms(10, 3, 10));
  TimeNs previous = 0;
  for (Tokens d = 1; d <= 8; ++d) {
    const auto bound = detection_latency_bound_silence(lower, d, from_ms(5000.0));
    ASSERT_TRUE(bound.has_value());
    EXPECT_GT(*bound, previous);
    previous = *bound;
  }
}

// ---- sup_difference machinery ----------------------------------------------
TEST(SupDifference, ZeroCurves) {
  ZeroCurve z1, z2;
  const auto sup = sup_difference(z1, z2, from_ms(100.0));
  EXPECT_EQ(sup.value, 0);
  EXPECT_TRUE(sup.bounded);
}

TEST(SupDifference, ReportsAttainmentPoint) {
  PJDUpperCurve upper(PJD::from_ms(10, 20, 10));
  PJDLowerCurve lower(PJD::from_ms(10, 20, 10));
  const auto sup = sup_difference(upper, lower, from_ms(5000.0));
  EXPECT_GT(sup.value, 0);
  EXPECT_EQ(upper.value_at(sup.at) - lower.value_at(sup.at), sup.value);
}

TEST(FirstTimeDifferenceReaches, ReturnsNulloptBeyondHorizon) {
  PJDLowerCurve lower(PJD::from_ms(10, 0, 10));
  ZeroCurve dead;
  EXPECT_FALSE(
      first_time_difference_reaches(lower, dead, 1'000'000, from_ms(100.0)).has_value());
}

}  // namespace
}  // namespace sccft::rtc
