// Baseline monitor tests: distance-function (Neukirchner-style) and watchdog.
#include <gtest/gtest.h>

#include "monitor/distance_function.hpp"
#include "monitor/watchdog.hpp"
#include "util/assert.hpp"

namespace sccft::monitor {
namespace {

using rtc::from_ms;
using rtc::PJD;
using rtc::TimeNs;

DistanceFunctionMonitor::Config df_config(const PJD& model, int l = 1,
                                          bool fail_silent_only = true) {
  return {.model = model,
          .l = l,
          .polling_interval = from_ms(1.0),
          .fail_silent_only = fail_silent_only};
}

TEST(DistanceFunction, ConformingStreamNeverFlagged) {
  const PJD model = PJD::from_ms(10, 2, 0);
  DistanceFunctionMonitor monitor(df_config(model));
  TimeNs poll = 0;
  for (int k = 0; k < 100; ++k) {
    const TimeNs event = static_cast<TimeNs>(k) * model.period + (k % 3) * from_ms(0.5);
    while (poll < event) {
      EXPECT_FALSE(monitor.poll(poll).has_value()) << "poll at " << poll;
      poll += from_ms(1.0);
    }
    EXPECT_FALSE(monitor.on_event(event).has_value());
  }
  EXPECT_FALSE(monitor.fault_detected());
}

TEST(DistanceFunction, SilenceDetectedAtNextPollAfterMaxSpan) {
  const PJD model = PJD::from_ms(10, 2, 0);
  DistanceFunctionMonitor monitor(df_config(model));
  // Events at 0, 10, 20 ms then silence.
  (void)monitor.on_event(0);
  (void)monitor.on_event(from_ms(10.0));
  (void)monitor.on_event(from_ms(20.0));
  // Next event due by 20 + P + J = 32 ms; polls every 1 ms.
  std::optional<TimeNs> detected;
  for (TimeNs t = from_ms(21.0); t <= from_ms(60.0) && !detected; t += from_ms(1.0)) {
    detected = monitor.poll(t);
  }
  ASSERT_TRUE(detected.has_value());
  EXPECT_EQ(*detected, from_ms(33.0));  // first poll after 32 ms
}

TEST(DistanceFunction, DeeperHistoryCatchesSlowRates) {
  // A stream that keeps emitting but at half rate: each single gap is legal
  // relative to the previous event only if J is large; with l=3 the monitor
  // compares against older events and convicts sooner.
  const PJD model = PJD::from_ms(10, 12, 0);
  DistanceFunctionMonitor shallow(df_config(model, 1));
  DistanceFunctionMonitor deep(df_config(model, 3));
  std::optional<TimeNs> shallow_detect, deep_detect;
  TimeNs t = 0;
  for (int k = 0; k < 40 && (!shallow_detect || !deep_detect); ++k) {
    t += from_ms(20.0);  // half the required rate
    if (!shallow_detect) (void)shallow.on_event(t);
    if (!deep_detect) (void)deep.on_event(t);
    for (TimeNs poll = t; poll < t + from_ms(20.0); poll += from_ms(1.0)) {
      if (!shallow_detect) shallow_detect = shallow.poll(poll);
      if (!deep_detect) deep_detect = deep.poll(poll);
    }
  }
  ASSERT_TRUE(deep_detect.has_value());
  // The deep monitor detects no later than the shallow one.
  if (shallow_detect) {
    EXPECT_LE(*deep_detect, *shallow_detect);
  }
}

TEST(DistanceFunction, TooFastBurstDetectedWhenEnabled) {
  const PJD model = PJD::from_ms(10, 1, 0);
  DistanceFunctionMonitor monitor(df_config(model, 2, /*fail_silent_only=*/false));
  (void)monitor.on_event(0);
  // Second event only 2 ms later: min_span(2) = P - J = 9 ms violated.
  const auto detected = monitor.on_event(from_ms(2.0));
  ASSERT_TRUE(detected.has_value());
  EXPECT_EQ(*detected, from_ms(2.0));
}

TEST(DistanceFunction, FailSilentModeIgnoresBursts) {
  const PJD model = PJD::from_ms(10, 1, 0);
  DistanceFunctionMonitor monitor(df_config(model, 2, /*fail_silent_only=*/true));
  (void)monitor.on_event(0);
  EXPECT_FALSE(monitor.on_event(from_ms(2.0)).has_value());
}

TEST(DistanceFunction, NoEventAtAllDetected) {
  const PJD model = PJD::from_ms(10, 2, 5);
  DistanceFunctionMonitor monitor(df_config(model));
  // First event due by delay + J + P = 17 ms.
  EXPECT_FALSE(monitor.poll(from_ms(16.0)).has_value());
  EXPECT_TRUE(monitor.poll(from_ms(18.0)).has_value());
}

TEST(DistanceFunction, SpanFunctions) {
  DistanceFunctionMonitor monitor(df_config(PJD::from_ms(10, 3, 0), 4));
  EXPECT_EQ(monitor.min_span(1), 0);
  EXPECT_EQ(monitor.min_span(2), from_ms(7.0));   // P - J
  EXPECT_EQ(monitor.min_span(3), from_ms(17.0));  // 2P - J
  EXPECT_EQ(monitor.max_span(1), from_ms(13.0));  // P + J
  EXPECT_EQ(monitor.max_span(2), from_ms(23.0));
}

TEST(DistanceFunction, HistoryBoundedByL) {
  DistanceFunctionMonitor monitor(df_config(PJD::from_ms(10, 1, 0), 2));
  const auto base = monitor.state_bytes();
  for (int k = 0; k < 50; ++k) (void)monitor.on_event(static_cast<TimeNs>(k) * from_ms(10.0));
  EXPECT_LE(monitor.state_bytes(), base + 2 * sizeof(TimeNs));
}

TEST(DistanceFunction, NeedsOneTimer) {
  DistanceFunctionMonitor monitor(df_config(PJD::from_ms(10, 1, 0)));
  EXPECT_EQ(monitor.timers_required(), 1);
}

TEST(Watchdog, SilenceDetectedAfterTimeout) {
  WatchdogMonitor monitor({.timeout = from_ms(12.0), .polling_interval = from_ms(1.0)});
  (void)monitor.on_event(from_ms(5.0));
  EXPECT_FALSE(monitor.poll(from_ms(17.0)).has_value());
  EXPECT_TRUE(monitor.poll(from_ms(17.5)).has_value());
}

TEST(Watchdog, EventsResetTheTimer) {
  WatchdogMonitor monitor({.timeout = from_ms(12.0)});
  for (int k = 0; k < 20; ++k) {
    const TimeNs t = static_cast<TimeNs>(k) * from_ms(10.0);
    (void)monitor.on_event(t);
    EXPECT_FALSE(monitor.poll(t + from_ms(9.0)).has_value());
  }
  EXPECT_FALSE(monitor.fault_detected());
}

TEST(Watchdog, SoundTimeoutAvoidsJitterFalsePositive) {
  // With the sound timeout P + J, the worst legal gap (P + J) never fires.
  const PJD model = PJD::from_ms(10, 6, 0);
  WatchdogMonitor monitor({.timeout = WatchdogMonitor::sound_timeout(model)});
  (void)monitor.on_event(0);
  EXPECT_FALSE(monitor.poll(from_ms(16.0)).has_value());  // legal worst gap
  EXPECT_TRUE(monitor.poll(from_ms(16.5)).has_value());   // beyond it: fault
}

TEST(Watchdog, TightTimeoutMisfiresOnLegalJitter) {
  // The paper's motivation: a naive timeout = P misfires under legal jitter.
  WatchdogMonitor naive({.timeout = from_ms(10.0)});
  (void)naive.on_event(0);
  // Legal next event at P + J = 16 ms; naive watchdog already fired.
  EXPECT_TRUE(naive.poll(from_ms(11.0)).has_value());
}

TEST(Watchdog, InvalidConfigRejected) {
  EXPECT_THROW(WatchdogMonitor({.timeout = 0}), util::ContractViolation);
}

}  // namespace
}  // namespace sccft::monitor
