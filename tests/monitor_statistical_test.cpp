// Statistical (EWMA) baseline monitor tests — including the inexactness the
// paper's introduction criticizes: a threshold low enough to detect quickly
// misfires under legal bursty jitter; one high enough to be safe detects
// slowly. No k gives a guarantee.
#include <gtest/gtest.h>

#include "kpn/timing.hpp"
#include "monitor/statistical.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace sccft::monitor {
namespace {

using rtc::from_ms;
using rtc::TimeNs;

StatisticalMonitor::Config config_with(double sigma) {
  return {.sigma_threshold = sigma,
          .ewma_alpha = 0.1,
          .warmup_events = 10,
          .polling_interval = from_ms(1.0)};
}

/// Drives the monitor with a shaped PJD stream; returns the first detection
/// (a false positive, since the stream is legal).
std::optional<TimeNs> drive_legal_stream(StatisticalMonitor& monitor,
                                         const rtc::PJD& model, int tokens,
                                         std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  kpn::TimingShaper shaper(model, 0, rng);
  TimeNs now = 0;
  for (int k = 0; k < tokens; ++k) {
    const TimeNs event = shaper.next_emission(now);
    shaper.commit(event);
    // Poll between events.
    for (TimeNs t = now + from_ms(1.0); t < event; t += from_ms(1.0)) {
      if (auto detected = monitor.poll(t)) return detected;
    }
    if (auto detected = monitor.on_event(event)) return detected;
    now = event;
  }
  return std::nullopt;
}

TEST(Statistical, LearnsPeriodicGap) {
  StatisticalMonitor monitor(config_with(4.0));
  for (int k = 0; k < 50; ++k) {
    (void)monitor.on_event(static_cast<TimeNs>(k) * from_ms(10.0));
  }
  EXPECT_TRUE(monitor.armed());
  EXPECT_NEAR(monitor.mean_gap_ns(), static_cast<double>(from_ms(10.0)),
              static_cast<double>(from_ms(0.5)));
  EXPECT_FALSE(monitor.fault_detected());
}

TEST(Statistical, DetectsSilenceOnStrictlyPeriodicStream) {
  StatisticalMonitor monitor(config_with(4.0));
  TimeNs t = 0;
  for (int k = 0; k < 40; ++k) {
    t = static_cast<TimeNs>(k) * from_ms(10.0);
    (void)monitor.on_event(t);
  }
  // Silence: poll forward until detection.
  std::optional<TimeNs> detected;
  for (TimeNs poll = t; poll < t + from_ms(500.0) && !detected; poll += from_ms(1.0)) {
    detected = monitor.poll(poll);
  }
  ASSERT_TRUE(detected.has_value());
  // Near-zero variance stream: detection shortly after one missed period.
  EXPECT_LT(*detected - t, from_ms(30.0));
}

TEST(Statistical, TightThresholdMisfiresOnLegalJitter) {
  // The paper's point about inexact methods: on a legal bursty stream
  // (jitter = 2 periods), an aggressive threshold false-positives.
  const rtc::PJD bursty = rtc::PJD::from_ms(10, 20, 0);
  int false_positives = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    StatisticalMonitor monitor(config_with(1.5));
    if (drive_legal_stream(monitor, bursty, 300, seed)) ++false_positives;
  }
  EXPECT_GT(false_positives, 0) << "expected the inexact monitor to misfire";
}

TEST(Statistical, SafeThresholdDetectsSlowerThanTight) {
  // The inexactness trade-off: feeding the SAME legal stream to a tight
  // (k=2) and a conservative (k=8) monitor and then going silent, the
  // conservative one detects strictly later — safety is bought with latency.
  const rtc::PJD model = rtc::PJD::from_ms(10, 6, 0);
  StatisticalMonitor tight(config_with(2.0));
  StatisticalMonitor safe(config_with(8.0));

  util::Xoshiro256 rng(3);
  kpn::TimingShaper shaper(model, 0, rng);
  TimeNs last = 0;
  for (int k = 0; k < 200; ++k) {
    last = shaper.next_emission(last);
    shaper.commit(last);
    (void)tight.on_event(last);
    (void)safe.on_event(last);
  }
  for (TimeNs poll = last; poll < last + from_ms(5000.0); poll += from_ms(1.0)) {
    (void)tight.poll(poll);
    (void)safe.poll(poll);
    if (tight.fault_detected() && safe.fault_detected()) break;
  }
  // The tight monitor fires first — possibly even during the legal stream
  // (a false positive, its other failure mode); the safe monitor fires
  // strictly later.
  ASSERT_TRUE(tight.fault_detected());
  ASSERT_TRUE(safe.fault_detected());
  EXPECT_LT(*tight.detection_time(), *safe.detection_time());
}

TEST(Statistical, NotArmedDuringWarmup) {
  StatisticalMonitor monitor(config_with(3.0));
  (void)monitor.on_event(0);
  EXPECT_FALSE(monitor.armed());
  EXPECT_FALSE(monitor.poll(from_ms(1000.0)).has_value());  // silent but unarmed
}

TEST(Statistical, InvalidConfigRejected) {
  EXPECT_THROW(StatisticalMonitor(config_with(0.0)), util::ContractViolation);
  auto config = config_with(3.0);
  config.ewma_alpha = 0.0;
  EXPECT_THROW(StatisticalMonitor{config}, util::ContractViolation);
  config = config_with(3.0);
  config.warmup_events = 1;
  EXPECT_THROW(StatisticalMonitor{config}, util::ContractViolation);
}

TEST(Statistical, NeedsATimer) {
  StatisticalMonitor monitor(config_with(3.0));
  EXPECT_EQ(monitor.timers_required(), 1);
}

}  // namespace
}  // namespace sccft::monitor
