// FIFO channel + coroutine process tests: blocking semantics, NoC-modelled
// transfer latency, preload, statistics.
#include <gtest/gtest.h>

#include <vector>

#include "kpn/channel.hpp"
#include "kpn/network.hpp"
#include "kpn/process.hpp"
#include "scc/platform.hpp"

namespace sccft::kpn {
namespace {

Token make_token(std::uint64_t seq, int bytes = 8) {
  return Token(std::vector<std::uint8_t>(static_cast<std::size_t>(bytes),
                                         static_cast<std::uint8_t>(seq)),
               seq, 0);
}

TEST(FifoChannel, FifoOrderPreserved) {
  sim::Simulator sim;
  kpn::Network net(sim);
  auto& fifo = net.add_fifo("f", 4);
  std::vector<std::uint64_t> received;

  net.add_process("writer", scc::CoreId{0}, 1, [&](ProcessContext& ctx) -> sim::Task {
    for (std::uint64_t k = 0; k < 10; ++k) {
      co_await write(fifo, make_token(k));
      co_await ctx.delay(100);
    }
  });
  net.add_process("reader", scc::CoreId{2}, 2, [&](ProcessContext& ctx) -> sim::Task {
    for (int k = 0; k < 10; ++k) {
      Token token = co_await read(fifo);
      received.push_back(token.seq());
      co_await ctx.delay(50);
    }
  });
  net.run_until(1'000'000);

  ASSERT_EQ(received.size(), 10u);
  for (std::uint64_t k = 0; k < 10; ++k) EXPECT_EQ(received[k], k);
}

TEST(FifoChannel, WriterBlocksOnFullFifo) {
  sim::Simulator sim;
  kpn::Network net(sim);
  auto& fifo = net.add_fifo("f", 2);
  std::vector<rtc::TimeNs> write_times;

  net.add_process("writer", scc::CoreId{0}, 1, [&](ProcessContext&) -> sim::Task {
    for (std::uint64_t k = 0; k < 4; ++k) {
      co_await write(fifo, make_token(k));
      write_times.push_back(sim.now());
    }
  });
  net.add_process("reader", scc::CoreId{2}, 2, [&](ProcessContext& ctx) -> sim::Task {
    co_await ctx.delay(1'000);
    while (true) {
      (void)co_await read(fifo);
      co_await ctx.delay(1'000);
    }
  });
  net.run_until(100'000);

  ASSERT_EQ(write_times.size(), 4u);
  EXPECT_EQ(write_times[0], 0);
  EXPECT_EQ(write_times[1], 0);      // capacity 2: first two immediate
  EXPECT_GE(write_times[2], 1'000);  // third waits for the first read
  EXPECT_GE(write_times[3], 2'000);
  EXPECT_GE(fifo.stats().writer_blocks, 2u);
}

TEST(FifoChannel, ReaderBlocksOnEmptyFifo) {
  sim::Simulator sim;
  kpn::Network net(sim);
  auto& fifo = net.add_fifo("f", 2);
  rtc::TimeNs read_done = -1;

  net.add_process("reader", scc::CoreId{0}, 1, [&](ProcessContext&) -> sim::Task {
    (void)co_await read(fifo);
    read_done = sim.now();
  });
  net.add_process("writer", scc::CoreId{2}, 2, [&](ProcessContext& ctx) -> sim::Task {
    co_await ctx.delay(5'000);
    co_await write(fifo, make_token(0));
  });
  net.run_until(100'000);

  EXPECT_EQ(read_done, 5'000);
  EXPECT_GE(fifo.stats().reader_blocks, 1u);
}

TEST(FifoChannel, NocLinkDelaysVisibility) {
  sim::Simulator sim;
  scc::Platform platform(sim);
  kpn::Network net(sim);
  // Cores on opposite mesh corners: several hops of latency.
  const scc::CoreId src{0};
  const scc::CoreId dst{46};
  auto& fifo = net.add_fifo("f", 4,
                            FifoChannel::LinkModel{&platform.noc(), src, dst});
  rtc::TimeNs read_done = -1;

  net.add_process("writer", src, 1, [&](ProcessContext&) -> sim::Task {
    co_await write(fifo, make_token(0, 3 * 1024));
  });
  net.add_process("reader", dst, 2, [&](ProcessContext&) -> sim::Task {
    (void)co_await read(fifo);
    read_done = sim.now();
  });
  net.run_until(10'000'000);

  const rtc::TimeNs expected = platform.noc().estimate_latency(src, dst, 3 * 1024);
  EXPECT_GT(read_done, 0);
  // transfer() reserves links, estimate_latency doesn't; allow slack.
  EXPECT_NEAR(static_cast<double>(read_done), static_cast<double>(expected),
              static_cast<double>(expected));
}

TEST(FifoChannel, PreloadVisibleImmediately) {
  sim::Simulator sim;
  kpn::Network net(sim);
  auto& fifo = net.add_fifo("f", 4);
  fifo.preload(Token{}, 3);
  EXPECT_EQ(fifo.fill(), 3);
  int got = 0;

  net.add_process("reader", scc::CoreId{0}, 1, [&](ProcessContext&) -> sim::Task {
    for (int k = 0; k < 3; ++k) {
      Token token = co_await read(fifo);
      EXPECT_EQ(token.size_bytes(), 0);
      ++got;
    }
  });
  net.run_until(1'000);
  EXPECT_EQ(got, 3);
}

TEST(FifoChannel, PreloadBeyondCapacityRejected) {
  sim::Simulator sim;
  kpn::Network net(sim);
  auto& fifo = net.add_fifo("f", 2);
  EXPECT_THROW(fifo.preload(Token{}, 3), util::ContractViolation);
}

TEST(FifoChannel, MaxFillTracked) {
  sim::Simulator sim;
  kpn::Network net(sim);
  auto& fifo = net.add_fifo("f", 8);
  net.add_process("writer", scc::CoreId{0}, 1, [&](ProcessContext& ctx) -> sim::Task {
    for (std::uint64_t k = 0; k < 5; ++k) co_await write(fifo, make_token(k));
    co_await ctx.delay(1);
  });
  net.add_process("reader", scc::CoreId{2}, 2, [&](ProcessContext& ctx) -> sim::Task {
    co_await ctx.delay(10);
    for (int k = 0; k < 5; ++k) (void)co_await read(fifo);
  });
  net.run_until(1'000);
  EXPECT_EQ(fifo.stats().max_fill, 5);
  EXPECT_EQ(fifo.stats().tokens_written, 5u);
  EXPECT_EQ(fifo.stats().tokens_read, 5u);
}

TEST(FifoChannel, WriteTraceRecordsTimestamps) {
  sim::Simulator sim;
  kpn::Network net(sim);
  auto& fifo = net.add_fifo("f", 8);
  fifo.enable_write_trace();
  net.add_process("writer", scc::CoreId{0}, 1, [&](ProcessContext& ctx) -> sim::Task {
    for (std::uint64_t k = 0; k < 3; ++k) {
      co_await write(fifo, make_token(k));
      co_await ctx.delay(1'000);
    }
  });
  net.add_process("reader", scc::CoreId{2}, 2, [&](ProcessContext&) -> sim::Task {
    for (int k = 0; k < 3; ++k) (void)co_await read(fifo);
  });
  net.run_until(100'000);
  ASSERT_EQ(fifo.write_trace().size(), 3u);
  EXPECT_EQ(fifo.write_trace()[0], 0);
  EXPECT_EQ(fifo.write_trace()[1], 1'000);
  EXPECT_EQ(fifo.write_trace()[2], 2'000);
}

TEST(Network, ProcessExceptionsSurface) {
  sim::Simulator sim;
  kpn::Network net(sim);
  net.add_process("bad", scc::CoreId{0}, 1, [&](ProcessContext& ctx) -> sim::Task {
    co_await ctx.delay(10);
    throw std::runtime_error("boom");
  });
  EXPECT_THROW(net.run_until(1'000), std::runtime_error);
}

TEST(Network, DuplicateProcessNameRejected) {
  sim::Simulator sim;
  kpn::Network net(sim);
  net.add_process("p", scc::CoreId{0}, 1, [](ProcessContext&) -> sim::Task { co_return; });
  EXPECT_THROW(
      net.add_process("p", scc::CoreId{2}, 2,
                      [](ProcessContext&) -> sim::Task { co_return; }),
      util::ContractViolation);
}

TEST(Network, FindProcessAndChannel) {
  sim::Simulator sim;
  kpn::Network net(sim);
  net.add_fifo("f", 2);
  net.add_process("p", scc::CoreId{0}, 1, [](ProcessContext&) -> sim::Task { co_return; });
  EXPECT_NE(net.find_channel("f"), nullptr);
  EXPECT_EQ(net.find_channel("g"), nullptr);
  EXPECT_NE(net.find_process("p"), nullptr);
  EXPECT_EQ(net.find_process("q"), nullptr);
}

TEST(TokenTest, ChecksumDetectsCorruption) {
  Token a(std::vector<std::uint8_t>{1, 2, 3}, 0, 0);
  Token b(std::vector<std::uint8_t>{1, 2, 4}, 0, 0);
  EXPECT_NE(a.checksum(), b.checksum());
  EXPECT_EQ(a.checksum(), Token(std::vector<std::uint8_t>{1, 2, 3}, 7, 9).checksum());
}

TEST(TokenTest, RestampKeepsPayload) {
  Token a(std::vector<std::uint8_t>{5, 6}, 1, 100);
  Token b = a.restamped(9, 900);
  EXPECT_EQ(b.seq(), 9u);
  EXPECT_EQ(b.produced_at(), 900);
  EXPECT_EQ(b.checksum(), a.checksum());
  EXPECT_EQ(b.payload().data(), a.payload().data());  // shared, not copied
}

}  // namespace
}  // namespace sccft::kpn
