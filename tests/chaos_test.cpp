// Tests for the chaos soak subsystem (src/chaos/): storm generation
// determinism, invariant oracles on clean and planted-bug runs, failure
// artifact round-trips, ddmin shrinking, and regressions for the two
// production bugs the soak itself discovered (the frontier-hold writer wake
// and the NoC arrival-count duplicate).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chaos/artifact.hpp"
#include "chaos/oracle.hpp"
#include "chaos/runner.hpp"
#include "chaos/shrink.hpp"
#include "chaos/storm.hpp"
#include "ft/fault_plan.hpp"
#include "util/assert.hpp"

namespace sccft::chaos {
namespace {

bool has_code(const std::vector<Violation>& violations, ViolationCode code) {
  for (const Violation& violation : violations) {
    if (violation.code == code) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Storm generation
// ---------------------------------------------------------------------------

TEST(Storm, GenerateIsDeterministicPerSeed) {
  const StormGenerator generator{StormConfig{}};
  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL, 1234567ULL}) {
    const StormPlan a = generator.generate(seed);
    const StormPlan b = generator.generate(seed);
    EXPECT_EQ(a.seed, seed);
    EXPECT_EQ(a.run_length, b.run_length);
    EXPECT_EQ(ft::serialize(a.faults), ft::serialize(b.faults));
  }
}

TEST(Storm, RespectsConfigBounds) {
  StormConfig config;
  config.min_faults = 2;
  config.max_faults = 5;
  const StormGenerator generator{config};
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const StormPlan plan = generator.generate(seed);
    ASSERT_GE(plan.faults.size(), 2u);
    ASSERT_LE(plan.faults.size(), 5u);
    for (const ft::FaultSpec& spec : plan.faults) {
      EXPECT_GE(spec.at, rtc::from_ms(100.0));
      EXPECT_LT(spec.at, plan.run_length);
    }
  }
}

TEST(Storm, NocFreeWhenDisallowed) {
  StormConfig config;
  config.allow_noc = false;
  config.adversarial_probability = 1.0;
  const StormGenerator generator{config};
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    for (const ft::FaultSpec& spec : generator.generate(seed).faults) {
      EXPECT_NE(spec.kind, ft::FaultKind::kNocLink);
    }
  }
}

TEST(Storm, LosslessClassification) {
  auto fault = [](ft::FaultKind kind, ft::ReplicaIndex replica) {
    ft::FaultSpec spec;
    spec.kind = kind;
    spec.replica = replica;
    spec.at = rtc::from_ms(500.0);
    return spec;
  };
  EXPECT_TRUE(plan_is_lossless({}));
  EXPECT_TRUE(plan_is_lossless(
      {fault(ft::FaultKind::kTransientSilence, ft::ReplicaIndex::kReplica1),
       fault(ft::FaultKind::kPayloadCorruption, ft::ReplicaIndex::kReplica1)}));
  EXPECT_FALSE(plan_is_lossless(
      {fault(ft::FaultKind::kTransientSilence, ft::ReplicaIndex::kReplica1),
       fault(ft::FaultKind::kTransientSilence, ft::ReplicaIndex::kReplica2)}));
  EXPECT_FALSE(plan_is_lossless(
      {fault(ft::FaultKind::kNocLink, ft::ReplicaIndex::kReplica1)}));
}

// ---------------------------------------------------------------------------
// Oracles on clean runs
// ---------------------------------------------------------------------------

TEST(Oracle, CleanStormsProduceNoViolations) {
  const StormGenerator generator{StormConfig{}};
  for (std::uint64_t seed : {3ULL, 11ULL, 29ULL}) {
    const StormPlan plan = generator.generate(seed);
    const RunObservation golden = run_golden(seed, plan.run_length);
    const RunObservation obs = run_storm(plan);
    const std::vector<Violation> violations = check_invariants(plan, obs, golden);
    for (const Violation& violation : violations) {
      ADD_FAILURE() << "seed " << seed << ": " << to_string(violation.code)
                    << ": " << violation.detail;
    }
  }
}

TEST(Oracle, GoldenRunSatisfiesItsOwnInvariants) {
  const RunObservation golden = run_golden(5, rtc::from_sec(2.0));
  StormPlan empty;
  empty.seed = 5;
  empty.run_length = rtc::from_sec(2.0);
  EXPECT_TRUE(check_invariants(empty, golden, golden).empty());
  EXPECT_FALSE(golden.consumed_seqs.empty());
  EXPECT_EQ(golden.consumed_seqs.front(), 0u);
}

TEST(Oracle, ViolationCodeTextRoundTrips) {
  for (const ViolationCode code :
       {ViolationCode::kContractViolation, ViolationCode::kDuplicateDelivery,
        ViolationCode::kCorruptDelivery, ViolationCode::kGoldenMismatch,
        ViolationCode::kUnjustifiedConviction, ViolationCode::kIllegalTransition,
        ViolationCode::kBudgetExceeded, ViolationCode::kSpineInconsistent,
        ViolationCode::kSequenceGap, ViolationCode::kStalledStream}) {
    EXPECT_EQ(violation_code_from_text(to_string(code)), code);
  }
  EXPECT_THROW((void)violation_code_from_text("no-such-code"),
               util::ContractViolation);
}

// ---------------------------------------------------------------------------
// Regressions: bugs found BY the chaos soak (kept as exact reproducers)
// ---------------------------------------------------------------------------

// A writer parked at the selector's rejoin frontier hold used to be resumed
// by unfreeze_writer / wake_writers while the hold was still active; the
// failed try_write retry then tripped the WriteAwaiter's `accepted_` assert
// (kpn/channel.hpp). Shrunk reproducer from soak seed 55.
TEST(ChaosRegression, FrontierHeldWriterSurvivesThawAndPeerWakes) {
  StormPlan plan;
  plan.seed = 55;
  plan.run_length = rtc::from_sec(2.0);
  plan.faults = ft::parse_fault_plan(
      "fault rate-degradation 2 1090633154 333002685 2.9697453589341336 1 0 0 "
      "12263056459291545251 0 0 0 0 3 50000\n"
      "fault transient-silence 1 1431440021 355011926 4 1 0 0 "
      "630105317583351277 0 0 0 0 3 50000\n"
      "fault rate-degradation 1 1050201645 182864106 5.0220312361801982 1 0 0 "
      "5072207305160419023 0 0 0 0 3 50000\n");
  const RunObservation golden = run_golden(plan.seed, plan.run_length);
  const RunObservation obs = run_storm(plan);
  EXPECT_FALSE(obs.contract_violation)
      << "contract violation: " << *obs.contract_violation;
  EXPECT_TRUE(check_invariants(plan, obs, golden).empty());
}

// NoC loss on a producer->replica link skews the replicas' arrival counts
// until both copies of one sequence number pass the count-based first-of-
// pair test: seq 68 was delivered twice. Shrunk reproducer from soak seed
// 1207; the fix pins delivery to the strictly-increasing seq frontier.
TEST(ChaosRegression, ArrivalCountSkewCannotDuplicateDelivery) {
  StormPlan plan;
  plan.seed = 1207;
  plan.run_length = rtc::from_sec(2.0);
  plan.faults = ft::parse_fault_plan(
      "fault noc-link 1 311687880 436419733 4 1 0 0 17037552813843147886 "
      "0.30295116915761761 0.21631566163006999 10000 159734 3 50000\n"
      "fault transient-silence 1 449314519 205245999 4 1 0 0 "
      "11240728515737854683 0 0 0 0 3 50000\n");
  const RunObservation golden = run_golden(plan.seed, plan.run_length);
  const RunObservation obs = run_storm(plan);
  const std::vector<Violation> violations = check_invariants(plan, obs, golden);
  EXPECT_FALSE(has_code(violations, ViolationCode::kDuplicateDelivery));
  for (std::size_t i = 1; i < obs.consumed_seqs.size(); ++i) {
    ASSERT_GT(obs.consumed_seqs[i], obs.consumed_seqs[i - 1]);
  }
}

// ---------------------------------------------------------------------------
// Planted bugs drive the whole pipeline: oracle -> artifact -> shrink ->
// replay (the ISSUE's acceptance scenario)
// ---------------------------------------------------------------------------

struct PlantedCase {
  PlantedBug bug;
  ViolationCode expected;
};

class PlantedPipeline : public ::testing::TestWithParam<PlantedCase> {};

TEST_P(PlantedPipeline, OracleArtifactShrinkReplay) {
  const PlantedCase param = GetParam();
  const StormGenerator generator{StormConfig{}};
  const RunOptions options{.planted = param.bug};

  // Soak until the planted bug manifests (seed 1 fires for both bugs; the
  // loop keeps the test robust to generator evolution).
  StormPlan plan;
  RunObservation obs;
  std::vector<Violation> violations;
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 32 && !found; ++seed) {
    plan = generator.generate(seed);
    const RunObservation golden = run_golden(seed, plan.run_length);
    obs = run_storm(plan, options);
    violations = check_invariants(plan, obs, golden);
    found = has_code(violations, param.expected);
  }
  ASSERT_TRUE(found) << "planted bug never manifested in 32 storms";

  // Artifact bundle round-trips byte-for-byte.
  FailureArtifact artifact = make_artifact(plan, options, obs, violations);
  EXPECT_EQ(artifact.seed, plan.seed);
  EXPECT_FALSE(artifact.flight_csv.empty());
  EXPECT_FALSE(artifact.registry_csv.empty());

  // ddmin shrink: the acceptance bar is a minimal reproducer of <= 2 faults.
  const ShrinkResult minimal = shrink_plan(plan, options, violations);
  ASSERT_LE(minimal.faults.size(), 2u);
  EXPECT_TRUE(has_code(minimal.violations, param.expected));
  artifact.shrunk = minimal.faults;

  const std::string text = serialize(artifact);
  const FailureArtifact parsed = parse_artifact(text);
  EXPECT_EQ(serialize(parsed), text);
  EXPECT_EQ(parsed.seed, artifact.seed);
  EXPECT_EQ(parsed.planted, param.bug);
  ASSERT_TRUE(parsed.shrunk.has_value());
  EXPECT_EQ(ft::serialize(*parsed.shrunk), ft::serialize(minimal.faults));

  // Replay from the PARSED artifact (not the in-memory one) reproduces.
  StormPlan replay;
  replay.seed = parsed.seed;
  replay.run_length = parsed.run_length;
  replay.faults = *parsed.shrunk;
  const RunObservation replay_golden = run_golden(replay.seed, replay.run_length);
  const RunObservation replay_obs =
      run_storm(replay, RunOptions{.planted = parsed.planted});
  EXPECT_TRUE(has_code(check_invariants(replay, replay_obs, replay_golden),
                       param.expected));
}

INSTANTIATE_TEST_SUITE_P(
    Chaos, PlantedPipeline,
    ::testing::Values(
        PlantedCase{PlantedBug::kDropAfterSecondRestart,
                    ViolationCode::kSequenceGap},
        PlantedCase{PlantedBug::kCorruptAfterRestart,
                    ViolationCode::kGoldenMismatch}),
    [](const ::testing::TestParamInfo<PlantedCase>& info) {
      return info.param.bug == PlantedBug::kDropAfterSecondRestart
                 ? "DropAfterSecondRestart"
                 : "CorruptAfterRestart";
    });

// ---------------------------------------------------------------------------
// Artifact parser rejects malformed input
// ---------------------------------------------------------------------------

std::string valid_artifact_text() {
  return "sccft-chaos-artifact v1\n"
         "seed 7\n"
         "run-length-ns 2000000000\n"
         "planted none\n"
         "control-plane 0 1 1 25000000 120000000 5000000\n"
         "reconfigure 0 250000000 2000000 8\n"
         "violation sequence-gap gap after seq 12\n"
         "plan-begin\n"
         "fault transient-silence 1 500000000 100000000 4 1 0 0 9 0 0 0 0 3 "
         "50000 0\n"
         "plan-end\n"
         "flight-begin\n"
         "time,kind\n"
         "flight-end\n"
         "registry-begin\n"
         "name,kind,value\n"
         "registry-end\n";
}

TEST(Artifact, ValidTextRoundTrips) {
  const FailureArtifact artifact = parse_artifact(valid_artifact_text());
  EXPECT_EQ(artifact.seed, 7u);
  EXPECT_EQ(artifact.run_length, 2'000'000'000);
  EXPECT_EQ(artifact.planted, PlantedBug::kNone);
  ASSERT_EQ(artifact.violations.size(), 1u);
  EXPECT_EQ(artifact.violations[0].code, ViolationCode::kSequenceGap);
  EXPECT_EQ(artifact.violations[0].detail, "gap after seq 12");
  ASSERT_EQ(artifact.plan.size(), 1u);
  EXPECT_EQ(artifact.plan[0].kind, ft::FaultKind::kTransientSilence);
  EXPECT_FALSE(artifact.shrunk.has_value());
  EXPECT_EQ(serialize(artifact), valid_artifact_text());
}

TEST(Artifact, MalformedInputThrows) {
  // Fuzz-style negatives: every structural mutilation must throw, never
  // crash or silently mis-parse.
  const std::string valid = valid_artifact_text();
  const std::vector<std::string> bad = {
      "",                                         // empty
      "sccft-chaos-artifact v2\nseed 1\n",        // wrong version
      valid + "mystery-directive 1\n",            // unknown directive
      "sccft-chaos-artifact v1\nseed banana\n",   // non-numeric seed
      "sccft-chaos-artifact v1\nseed 1\nrun-length-ns 12x\n",  // trailing junk
      "sccft-chaos-artifact v1\nseed 1\nplanted quantum-bit-flip\n",
      "sccft-chaos-artifact v1\nseed 1\nviolation made-up-code detail\n",
      // control-plane flags are strictly 0|1; periods must be numbers
      "sccft-chaos-artifact v1\nseed 1\ncontrol-plane 2 1 1 1 1 1\n",
      "sccft-chaos-artifact v1\nseed 1\ncontrol-plane 1 1 1 soon 1 1\n",
      "sccft-chaos-artifact v1\nseed 1\ncontrol-plane 1 1\n",  // truncated
      "sccft-chaos-artifact v1\nseed 1\nrun-length-ns 5\nviolation "
      "sequence-gap x\nplan-begin\nfault garbage\nplan-end\n",  // bad fault line
      "sccft-chaos-artifact v1\nseed 1\nrun-length-ns 5\nviolation "
      "sequence-gap x\nplan-begin\n",  // truncated section
  };
  for (const std::string& text : bad) {
    EXPECT_THROW((void)parse_artifact(text), util::ContractViolation)
        << "accepted: " << text.substr(0, 60);
  }
  // Required fields must be present even if everything else parses.
  EXPECT_THROW((void)parse_artifact("sccft-chaos-artifact v1\nseed 1\n"),
               util::ContractViolation);
}

TEST(Artifact, PlantedBugTextRoundTrips) {
  for (const PlantedBug bug :
       {PlantedBug::kNone, PlantedBug::kDropAfterSecondRestart,
        PlantedBug::kCorruptAfterRestart}) {
    EXPECT_EQ(planted_bug_from_text(to_string(bug)), bug);
  }
  EXPECT_THROW((void)planted_bug_from_text("heisenbug"), util::ContractViolation);
}

}  // namespace
}  // namespace sccft::chaos
