// Integration test: the experiment engine's VCD waveform export.
#include <gtest/gtest.h>

#include <fstream>

#include "apps/adpcm/app.hpp"
#include "apps/common/experiment.hpp"

namespace sccft::apps {
namespace {

TEST(VcdExport, FaultRunProducesWaveformWithFaultEdge) {
  ExperimentRunner runner(adpcm::make_application());
  ExperimentOptions options;
  options.seed = 3;
  options.run_periods = 80;
  options.fault_after_periods = 40;
  options.inject_fault = true;
  options.vcd_path = "/tmp/sccft_vcd_test.vcd";
  const auto result = runner.run(options);
  ASSERT_TRUE(result.any_detection);

  std::ifstream in(options.vcd_path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  // Header declares the channel signals...
  EXPECT_NE(content.find("$var wire 8"), std::string::npos);
  EXPECT_NE(content.find("replicator_fill_R1"), std::string::npos);
  EXPECT_NE(content.find("fault_R1"), std::string::npos);
  // ...and the fault flag transitions 0 -> 1 somewhere in the dump.
  // (Scalar change lines look like "1<id>"; find the fault signal's id.)
  const auto var_pos = content.find("fault_R1");
  ASSERT_NE(var_pos, std::string::npos);
  // Extract the id: "$var wire 1 <id> fault_R1 $end"
  const auto line_start = content.rfind("$var", var_pos);
  std::istringstream is(content.substr(line_start, var_pos - line_start));
  std::string dollar_var, wire, width, id;
  is >> dollar_var >> wire >> width >> id;
  EXPECT_NE(content.find("1" + id), std::string::npos)
      << "fault flag never rose in the waveform";

  // Timestamps are present and plausible (sampled 8x per 6.3 ms period).
  EXPECT_NE(content.find("#0"), std::string::npos);
  EXPECT_GT(content.size(), 1'000u);
}

TEST(VcdExport, CleanRunHasNoFaultEdge) {
  ExperimentRunner runner(adpcm::make_application());
  ExperimentOptions options;
  options.seed = 3;
  options.run_periods = 40;
  options.inject_fault = false;
  options.vcd_path = "/tmp/sccft_vcd_clean.vcd";
  (void)runner.run(options);

  std::ifstream in(options.vcd_path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  const auto var_pos = content.find("fault_R1");
  ASSERT_NE(var_pos, std::string::npos);
  const auto line_start = content.rfind("$var", var_pos);
  std::istringstream is(content.substr(line_start, var_pos - line_start));
  std::string dollar_var, wire, width, id;
  is >> dollar_var >> wire >> width >> id;
  EXPECT_EQ(content.find("1" + id), std::string::npos);
}

}  // namespace
}  // namespace sccft::apps
