// CLI flag parser tests.
#include <gtest/gtest.h>

#include "util/assert.hpp"
#include "util/cli.hpp"

namespace sccft::util {
namespace {

CliParser make_parser() {
  CliParser cli("prog", "test program");
  cli.add_flag("name", "default", "a string flag");
  cli.add_flag("count", "3", "an int flag");
  cli.add_flag("ratio", "1.5", "a double flag");
  cli.add_flag("verbose", "false", "a boolean flag");
  return cli;
}

TEST(Cli, DefaultsApplyWithoutArgs) {
  auto cli = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get("name"), "default");
  EXPECT_EQ(cli.get_int("count"), 3);
  EXPECT_DOUBLE_EQ(cli.get_double("ratio"), 1.5);
  EXPECT_FALSE(cli.get_bool("verbose"));
}

TEST(Cli, SpaceSeparatedValues) {
  auto cli = make_parser();
  const char* argv[] = {"prog", "--name", "hello", "--count", "42"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(cli.get("name"), "hello");
  EXPECT_EQ(cli.get_int("count"), 42);
}

TEST(Cli, EqualsSeparatedValues) {
  auto cli = make_parser();
  const char* argv[] = {"prog", "--name=world", "--ratio=2.25"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.get("name"), "world");
  EXPECT_DOUBLE_EQ(cli.get_double("ratio"), 2.25);
}

TEST(Cli, BareBooleanFlag) {
  auto cli = make_parser();
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_TRUE(cli.get_bool("verbose"));
}

TEST(Cli, UnknownFlagRejected) {
  auto cli = make_parser();
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_FALSE(cli.parse(3, argv));
  EXPECT_NE(cli.error().find("bogus"), std::string::npos);
}

TEST(Cli, MissingValueRejected) {
  auto cli = make_parser();
  const char* argv[] = {"prog", "--name"};
  EXPECT_FALSE(cli.parse(2, argv));
  EXPECT_NE(cli.error().find("needs a value"), std::string::npos);
}

TEST(Cli, PositionalRejected) {
  auto cli = make_parser();
  const char* argv[] = {"prog", "oops"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, HelpRequested) {
  auto cli = make_parser();
  const char* argv[] = {"prog", "--help"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_TRUE(cli.help_requested());
  EXPECT_NE(cli.usage().find("test program"), std::string::npos);
  EXPECT_NE(cli.usage().find("--count"), std::string::npos);
}

TEST(Cli, DuplicateFlagDefinitionRejected) {
  CliParser cli("prog", "x");
  cli.add_flag("a", "1", "first");
  EXPECT_THROW(cli.add_flag("a", "2", "again"), ContractViolation);
}

TEST(Cli, UnknownGetRejected) {
  auto cli = make_parser();
  EXPECT_THROW((void)cli.get("nope"), ContractViolation);
}

}  // namespace
}  // namespace sccft::util
