// CLI flag parser tests.
#include <gtest/gtest.h>

#include "util/assert.hpp"
#include "util/cli.hpp"

namespace sccft::util {
namespace {

CliParser make_parser() {
  CliParser cli("prog", "test program");
  cli.add_flag("name", "default", "a string flag");
  cli.add_flag("count", "3", "an int flag");
  cli.add_flag("ratio", "1.5", "a double flag");
  cli.add_flag("verbose", "false", "a boolean flag");
  return cli;
}

TEST(Cli, DefaultsApplyWithoutArgs) {
  auto cli = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get("name"), "default");
  EXPECT_EQ(cli.get_int("count"), 3);
  EXPECT_DOUBLE_EQ(cli.get_double("ratio"), 1.5);
  EXPECT_FALSE(cli.get_bool("verbose"));
}

TEST(Cli, SpaceSeparatedValues) {
  auto cli = make_parser();
  const char* argv[] = {"prog", "--name", "hello", "--count", "42"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(cli.get("name"), "hello");
  EXPECT_EQ(cli.get_int("count"), 42);
}

TEST(Cli, EqualsSeparatedValues) {
  auto cli = make_parser();
  const char* argv[] = {"prog", "--name=world", "--ratio=2.25"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.get("name"), "world");
  EXPECT_DOUBLE_EQ(cli.get_double("ratio"), 2.25);
}

TEST(Cli, BareBooleanFlag) {
  auto cli = make_parser();
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_TRUE(cli.get_bool("verbose"));
}

TEST(Cli, UnknownFlagRejected) {
  auto cli = make_parser();
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_FALSE(cli.parse(3, argv));
  EXPECT_NE(cli.error().find("bogus"), std::string::npos);
}

TEST(Cli, MissingValueRejected) {
  auto cli = make_parser();
  const char* argv[] = {"prog", "--name"};
  EXPECT_FALSE(cli.parse(2, argv));
  EXPECT_NE(cli.error().find("needs a value"), std::string::npos);
}

TEST(Cli, PositionalRejected) {
  auto cli = make_parser();
  const char* argv[] = {"prog", "oops"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, HelpRequested) {
  auto cli = make_parser();
  const char* argv[] = {"prog", "--help"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_TRUE(cli.help_requested());
  EXPECT_NE(cli.usage().find("test program"), std::string::npos);
  EXPECT_NE(cli.usage().find("--count"), std::string::npos);
}

CliParser make_typed_parser() {
  CliParser cli("prog", "typed flags");
  cli.add_int_flag("jobs", 2, "worker threads", /*min=*/1, /*max=*/4096);
  cli.add_int_flag("offset", 0, "unbounded int");
  cli.add_double_flag("ratio", 0.5, "a fraction", /*min=*/0.0, /*max=*/1.0);
  return cli;
}

// Regression: `--jobs garbage` used to abort through an uncaught std::stoll
// exception inside get_int(); typed flags must fail parse() with a
// diagnostic instead.
TEST(Cli, IntFlagRejectsNonNumeric) {
  auto cli = make_typed_parser();
  const char* argv[] = {"prog", "--jobs", "garbage"};
  EXPECT_FALSE(cli.parse(3, argv));
  EXPECT_NE(cli.error().find("--jobs"), std::string::npos);
  EXPECT_NE(cli.error().find("garbage"), std::string::npos);
}

TEST(Cli, IntFlagRejectsOverflow) {
  auto cli = make_typed_parser();
  // One past INT64_MAX: std::stoll would throw out_of_range here.
  const char* argv[] = {"prog", "--offset=9223372036854775808"};
  EXPECT_FALSE(cli.parse(2, argv));
  EXPECT_NE(cli.error().find("--offset"), std::string::npos);
}

TEST(Cli, IntFlagRejectsTrailingJunk) {
  for (const char* bad : {"4x", "1e3", "7 ", " 7", "0x10", "++1"}) {
    auto cli = make_typed_parser();
    const std::string arg = std::string("--jobs=") + bad;
    const char* argv[] = {"prog", arg.c_str()};
    EXPECT_FALSE(cli.parse(2, argv)) << "accepted '" << bad << "'";
  }
}

TEST(Cli, IntFlagEnforcesBounds) {
  {
    auto cli = make_typed_parser();
    const char* argv[] = {"prog", "--jobs", "0"};
    EXPECT_FALSE(cli.parse(3, argv));
    EXPECT_NE(cli.error().find("out of range"), std::string::npos);
    EXPECT_NE(cli.error().find("[1, 4096]"), std::string::npos);
  }
  {
    auto cli = make_typed_parser();
    const char* argv[] = {"prog", "--jobs", "4097"};
    EXPECT_FALSE(cli.parse(3, argv));
  }
  {
    // Negative values pass where the declared range admits them.
    auto cli = make_typed_parser();
    const char* argv[] = {"prog", "--offset", "-12"};
    ASSERT_TRUE(cli.parse(3, argv));
    EXPECT_EQ(cli.get_int("offset"), -12);
  }
}

TEST(Cli, DoubleFlagValidatesAtParse) {
  {
    auto cli = make_typed_parser();
    const char* argv[] = {"prog", "--ratio", "0.75"};
    ASSERT_TRUE(cli.parse(3, argv));
    EXPECT_DOUBLE_EQ(cli.get_double("ratio"), 0.75);
  }
  for (const char* bad : {"abc", "1.5.2", "0.5x", "2.0" /* above max */}) {
    auto cli = make_typed_parser();
    const std::string arg = std::string("--ratio=") + bad;
    const char* argv[] = {"prog", arg.c_str()};
    EXPECT_FALSE(cli.parse(2, argv)) << "accepted '" << bad << "'";
  }
}

TEST(Cli, TypedDeclarationsRejectBadDefaults) {
  CliParser cli("prog", "x");
  EXPECT_THROW(cli.add_int_flag("n", 0, "below min", /*min=*/1),
               ContractViolation);
  EXPECT_THROW(cli.add_double_flag("d", 2.0, "above max", 0.0, 1.0),
               ContractViolation);
}

// get_int on an untyped (string) flag must fail as a contract violation with
// the flag name in the message — never an uncaught std::stoll abort.
TEST(Cli, GetIntOnMalformedStringFlagThrowsContract) {
  CliParser cli("prog", "x");
  cli.add_flag("mode", "fast", "a string flag");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  try {
    (void)cli.get_int("mode");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& error) {
    EXPECT_NE(std::string(error.what()).find("mode"), std::string::npos);
  }
}

TEST(Cli, ParseInt64Strictness) {
  EXPECT_EQ(parse_int64("42"), 42);
  EXPECT_EQ(parse_int64("-7"), -7);
  EXPECT_EQ(parse_int64("9223372036854775807"), 9223372036854775807LL);
  EXPECT_FALSE(parse_int64("").has_value());
  EXPECT_FALSE(parse_int64("9223372036854775808").has_value());
  EXPECT_FALSE(parse_int64("4x").has_value());
  EXPECT_FALSE(parse_int64("1e3").has_value());
  EXPECT_FALSE(parse_int64("  5").has_value());
}

TEST(Cli, DuplicateFlagDefinitionRejected) {
  CliParser cli("prog", "x");
  cli.add_flag("a", "1", "first");
  EXPECT_THROW(cli.add_flag("a", "2", "again"), ContractViolation);
}

TEST(Cli, UnknownGetRejected) {
  auto cli = make_parser();
  EXPECT_THROW((void)cli.get("nope"), ContractViolation);
}

}  // namespace
}  // namespace sccft::util
