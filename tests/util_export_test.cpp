// VCD and CSV export tests.
#include <gtest/gtest.h>

#include <sstream>

#include "util/assert.hpp"
#include "util/csv.hpp"
#include "util/vcd.hpp"

namespace sccft::util {
namespace {

TEST(Vcd, HeaderDeclaresSignals) {
  VcdWriter vcd("testscope");
  (void)vcd.add_signal("fill_r1", 8);
  (void)vcd.add_signal("fault", 1);
  const std::string out = vcd.render();
  EXPECT_NE(out.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(out.find("$scope module testscope $end"), std::string::npos);
  EXPECT_NE(out.find("$var wire 8 ! fill_r1 $end"), std::string::npos);
  EXPECT_NE(out.find("$var wire 1 \" fault $end"), std::string::npos);
  EXPECT_NE(out.find("$enddefinitions $end"), std::string::npos);
}

TEST(Vcd, ChangesSortedByTime) {
  VcdWriter vcd;
  const int sig = vcd.add_signal("x", 4);
  vcd.change(30, sig, 3);
  vcd.change(10, sig, 1);
  vcd.change(20, sig, 2);
  const std::string out = vcd.render();
  const auto p10 = out.find("#10");
  const auto p20 = out.find("#20");
  const auto p30 = out.find("#30");
  ASSERT_NE(p10, std::string::npos);
  EXPECT_LT(p10, p20);
  EXPECT_LT(p20, p30);
}

TEST(Vcd, ScalarAndVectorFormats) {
  VcdWriter vcd;
  const int flag = vcd.add_signal("flag", 1);
  const int bus = vcd.add_signal("bus", 4);
  vcd.change(5, flag, 1);
  vcd.change(5, bus, 0b1010);
  const std::string out = vcd.render();
  EXPECT_NE(out.find("1!"), std::string::npos);
  EXPECT_NE(out.find("b1010 \""), std::string::npos);
}

TEST(Vcd, SameTimeChangesGroupedUnderOneTimestamp) {
  VcdWriter vcd;
  const int a = vcd.add_signal("a", 1);
  const int b = vcd.add_signal("b", 1);
  vcd.change(7, a, 1);
  vcd.change(7, b, 1);
  const std::string out = vcd.render();
  std::size_t stamps = 0;
  std::istringstream is(out);
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line[0] == '#') ++stamps;
  }
  EXPECT_EQ(stamps, 1u);
}

TEST(Vcd, ManySignalsGetUniqueIds) {
  VcdWriter vcd;
  for (int i = 0; i < 200; ++i) {
    (void)vcd.add_signal("s" + std::to_string(i), 1);
  }
  const std::string out = vcd.render();
  // 94 single-char ids, then 2-char: spot-check no parse breakage.
  EXPECT_NE(out.find("$var wire 1"), std::string::npos);
}

TEST(Vcd, InvalidInputsRejected) {
  VcdWriter vcd;
  EXPECT_THROW((void)vcd.add_signal("x", 0), ContractViolation);
  EXPECT_THROW((void)vcd.add_signal("", 1), ContractViolation);
  const int sig = vcd.add_signal("ok", 1);
  EXPECT_THROW(vcd.change(-1, sig, 0), ContractViolation);
  EXPECT_THROW(vcd.change(0, sig + 1, 0), ContractViolation);
}

TEST(Csv, RendersHeaderAndRows) {
  CsvWriter csv({"a", "b"});
  csv.add_row({"1", "2"});
  csv.add_row({"x", "y"});
  EXPECT_EQ(csv.render(), "a,b\n1,2\nx,y\n");
}

TEST(Csv, QuotesSpecialCells) {
  CsvWriter csv({"text"});
  csv.add_row({"hello, world"});
  csv.add_row({"say \"hi\""});
  const std::string out = csv.render();
  EXPECT_NE(out.find("\"hello, world\""), std::string::npos);
  EXPECT_NE(out.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Csv, RowArityEnforced) {
  CsvWriter csv({"a", "b"});
  EXPECT_THROW(csv.add_row({"only-one"}), ContractViolation);
}

TEST(Csv, CommentsPrecedeHeader) {
  CsvWriter csv({"a", "b"});
  csv.add_comment("seeds 1..20");
  csv.add_row({"1", "2"});
  EXPECT_EQ(csv.render(), "# seeds 1..20\na,b\n1,2\n");
}

// Regression: a comment containing '\n' used to be emitted verbatim, so
// everything after the newline escaped the `# ` framing and corrupted the
// header block. Control characters must be stored escaped.
TEST(Csv, CommentNewlinesCannotEscapeTheFraming) {
  CsvWriter csv({"a"});
  csv.add_comment("line one\nline two\r\nline three");
  csv.add_row({"1"});
  const std::string out = csv.render();
  EXPECT_EQ(out, "# line one\\nline two\\r\\nline three\na\n1\n");
  // Every physical line before the header is a comment line.
  std::istringstream is(out);
  std::string line;
  ASSERT_TRUE(std::getline(is, line));
  EXPECT_EQ(line.rfind("# ", 0), 0u);
  ASSERT_TRUE(std::getline(is, line));
  EXPECT_EQ(line, "a");  // header intact, not split by the comment
}

TEST(Csv, FileRoundTrip) {
  CsvWriter csv({"k", "v"});
  csv.add_row({"1", "2"});
  const std::string path = "/tmp/sccft_csv_test.csv";
  ASSERT_TRUE(csv.write_file(path));
  std::ifstream in(path);
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first, "k,v");
}

}  // namespace
}  // namespace sccft::util
