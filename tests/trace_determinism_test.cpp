// Determinism oracle for the trace spine (Invariant Checklist): two MJPEG
// fault-campaign runs with the same seed must serialize byte-identical trace
// streams and identical metrics registries, a different seed must not, and
// attaching a sink must not perturb the experiment's results (no observer
// effect — the same guarantee a SCCFT_TRACE_COMPILED_OUT build relies on).
#include <gtest/gtest.h>

#include "apps/mjpeg/app.hpp"
#include "apps/common/experiment.hpp"
#include "trace/sinks.hpp"

namespace sccft::apps {
namespace {

ExperimentOptions fault_options(std::uint64_t seed) {
  ExperimentOptions options;
  options.seed = seed;
  options.run_periods = 60;
  options.fault_after_periods = 30;
  options.inject_fault = true;
  options.faulty_replica = ft::ReplicaIndex::kReplica1;
  return options;
}

TEST(TraceDeterminism, SameSeedFaultCampaignsSerializeByteIdenticalStreams) {
  ExperimentRunner runner(mjpeg::make_application());

  trace::BinarySink first_stream, second_stream;
  ExperimentOptions options = fault_options(7);

  options.trace_sink = &first_stream;
  const auto first = runner.run(options);
  options.trace_sink = &second_stream;
  const auto second = runner.run(options);

  ASSERT_GT(first_stream.event_count(), 0u);
  EXPECT_EQ(first_stream.event_count(), second_stream.event_count());
  EXPECT_EQ(first_stream.data(), second_stream.data());

  // The quantitative record agrees byte-for-byte too.
  EXPECT_EQ(first.metrics->render_csv(), second.metrics->render_csv());
  EXPECT_EQ(first.output_checksums, second.output_checksums);
  EXPECT_EQ(first.fault_injected_at, second.fault_injected_at);
}

TEST(TraceDeterminism, DifferentSeedsDiverge) {
  ExperimentRunner runner(mjpeg::make_application());

  trace::BinarySink first_stream, second_stream;
  ExperimentOptions options = fault_options(7);
  options.trace_sink = &first_stream;
  (void)runner.run(options);

  options = fault_options(8);
  options.trace_sink = &second_stream;
  (void)runner.run(options);

  // Seeds shift the fault phase and every shaper draw; the streams must not
  // collide (otherwise the oracle would vacuously pass).
  EXPECT_NE(first_stream.data(), second_stream.data());
}

TEST(TraceDeterminism, AttachingSinksDoesNotPerturbResults) {
  ExperimentRunner runner(mjpeg::make_application());

  ExperimentOptions options = fault_options(7);
  const auto untraced = runner.run(options);

  trace::BinarySink stream;
  trace::RingBufferSink ring(512);
  options.trace_sink = &stream;
  const auto traced = runner.run(options);

  // Everything Table 2 reads must be identical with and without observers —
  // the compiled-out build (SCCFT_TRACE_COMPILED_OUT) leans on exactly this.
  EXPECT_EQ(untraced.output_checksums, traced.output_checksums);
  EXPECT_EQ(untraced.fill_r1, traced.fill_r1);
  EXPECT_EQ(untraced.fill_r2, traced.fill_r2);
  EXPECT_EQ(untraced.fill_s1, traced.fill_s1);
  EXPECT_EQ(untraced.fill_s2, traced.fill_s2);
  EXPECT_EQ(untraced.consumer_tokens, traced.consumer_tokens);
  EXPECT_EQ(untraced.consumer_stalls, traced.consumer_stalls);
  EXPECT_EQ(untraced.replicator_latency, traced.replicator_latency);
  EXPECT_EQ(untraced.selector_latency, traced.selector_latency);
  EXPECT_EQ(untraced.metrics->render_csv(), traced.metrics->render_csv());
}

}  // namespace
}  // namespace sccft::apps
