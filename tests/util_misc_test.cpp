// CRC32, ASCII table, logging, and contract-macro tests.
#include <gtest/gtest.h>

#include "util/assert.hpp"
#include "util/crc32.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace sccft::util {
namespace {

TEST(Crc32, KnownVector) {
  // CRC-32("123456789") = 0xCBF43926 (classic check value).
  const std::string s = "123456789";
  const auto crc = crc32(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  EXPECT_EQ(crc, 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) {
  EXPECT_EQ(crc32({}), 0u);
}

TEST(Crc32, ChainingMatchesWhole) {
  const std::vector<std::uint8_t> data{1, 2, 3, 4, 5, 6, 7, 8};
  const auto whole = crc32(data);
  const auto first = crc32(std::span(data).subspan(0, 3));
  const auto chained = crc32(std::span(data).subspan(3), first);
  EXPECT_EQ(whole, chained);
}

TEST(Crc32, SensitiveToSingleBit) {
  std::vector<std::uint8_t> a{0, 0, 0, 0};
  std::vector<std::uint8_t> b{0, 0, 0, 1};
  EXPECT_NE(crc32(a), crc32(b));
}

TEST(Table, RendersAlignedGrid) {
  Table table("Title");
  table.set_header({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22"});
  const std::string out = table.render();
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("| alpha |"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
  // All lines between +...+ markers have equal width.
  std::size_t width = 0;
  std::istringstream is(out);
  std::string line;
  std::getline(is, line);  // title
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << line;
  }
}

TEST(Table, ShortRowsPadded) {
  Table table;
  table.set_header({"a", "b", "c"});
  table.add_row({"x"});
  EXPECT_NE(table.render().find("x"), std::string::npos);
}

TEST(Table, SeparatorRows) {
  Table table;
  table.set_header({"a"});
  table.add_row({"1"});
  table.add_separator();
  table.add_row({"2"});
  const std::string out = table.render();
  // Header rule + separator + bottom rule + top = 4 horizontal lines.
  std::size_t rules = 0;
  std::istringstream is(out);
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line[0] == '+') ++rules;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(Table, TooManyCellsRejected) {
  Table table;
  table.set_header({"a"});
  EXPECT_THROW(table.add_row({"1", "2"}), ContractViolation);
}

TEST(Table, RowsBeforeHeaderRejected) {
  Table table;
  EXPECT_THROW(table.add_row({"1"}), ContractViolation);
}

TEST(Contracts, MacrosThrowWithLocation) {
  try {
    SCCFT_EXPECTS(1 == 2);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("precondition"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("util_misc_test.cpp"), std::string::npos);
  }
  EXPECT_THROW(SCCFT_ENSURES(false), ContractViolation);
  EXPECT_THROW(SCCFT_ASSERT(false), ContractViolation);
  EXPECT_NO_THROW(SCCFT_EXPECTS(true));
}

TEST(Log, ThresholdFilters) {
  const LogLevel old = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below threshold: silently dropped (no observable side effect to assert
  // beyond not crashing).
  logf(LogLevel::kDebug, "test", "dropped ", 42);
  logf(LogLevel::kError, "test", "emitted ", 42);
  set_log_level(old);
}

}  // namespace
}  // namespace sccft::util
