// Integration tests for the experiment engine's platform path: process
// mapping, NoC effects, and cross-configuration result invariance.
#include <gtest/gtest.h>

#include "apps/adpcm/app.hpp"
#include "apps/common/experiment.hpp"
#include "apps/mjpeg/app.hpp"
#include "scc/mapping.hpp"

namespace sccft::apps {
namespace {

TEST(PlatformIntegration, OutputIdenticalWithAndWithoutNoc) {
  // The NoC adds microsecond-scale latencies; token VALUES must be identical
  // either way (determinacy), and the consumer's millisecond-scale timing
  // statistics nearly so.
  ExperimentRunner runner(adpcm::make_application());
  ExperimentOptions options;
  options.seed = 11;
  options.run_periods = 60;

  options.use_platform = true;
  const auto with_noc = runner.run(options);
  options.use_platform = false;
  const auto without = runner.run(options);

  EXPECT_EQ(with_noc.output_checksums, without.output_checksums);
  ASSERT_FALSE(with_noc.consumer_interarrival_ms.empty());
  EXPECT_NEAR(with_noc.consumer_interarrival_ms.mean(),
              without.consumer_interarrival_ms.mean(), 0.1);
}

TEST(PlatformIntegration, NocContentionObservedOnLargeTokens) {
  // The MJPEG decoded frames (76.8 KB in <= 3 KiB chunks) genuinely traverse
  // the modelled mesh: contention stalls occur and are reported.
  ExperimentRunner runner(mjpeg::make_application());
  ExperimentOptions options;
  options.seed = 1;
  options.run_periods = 30;
  const auto result = runner.run(options);
  EXPECT_GT(result.noc_contention_stalls, 0u);
}

TEST(PlatformIntegration, MappingUsesDistinctTiles) {
  // The low-contention mapper must place each of the duplicated MJPEG
  // network's 10 processes on its own tile (paper: one process per tile).
  std::vector<scc::TrafficEdge> edges{{0, 1, 1000}, {1, 2, 1000}, {2, 3, 1000},
                                      {0, 4, 1000}, {4, 5, 1000}, {5, 3, 1000}};
  const auto mapping = scc::map_low_contention(10, edges);
  std::vector<int> tiles;
  for (const auto core : mapping.process_to_core) tiles.push_back(core.tile().value);
  std::sort(tiles.begin(), tiles.end());
  EXPECT_EQ(std::adjacent_find(tiles.begin(), tiles.end()), tiles.end());
}

TEST(PlatformIntegration, HeavyEdgesMappedAdjacent) {
  // Producer->replica-head edges carry the big tokens; after mapping, the
  // heaviest pair should sit within a couple of hops.
  std::vector<scc::TrafficEdge> edges{{0, 1, 1'000'000}, {0, 2, 10}};
  const auto mapping = scc::map_low_contention(3, edges);
  const int heavy_hops = scc::hop_count(mapping.process_to_core[0].tile(),
                                        mapping.process_to_core[1].tile());
  EXPECT_LE(heavy_hops, 2);
}

TEST(PlatformIntegration, SeedChangesTimingNotValues) {
  ExperimentRunner runner(adpcm::make_application());
  ExperimentOptions options;
  options.run_periods = 60;
  options.seed = 1;
  const auto a = runner.run(options);
  options.seed = 2;
  const auto b = runner.run(options);
  // Same data stream (values are seed-independent)...
  EXPECT_EQ(a.output_checksums, b.output_checksums);
  // ...but different jitter draws.
  EXPECT_NE(a.consumer_interarrival_ms.samples(), b.consumer_interarrival_ms.samples());
}

TEST(PlatformIntegration, LongRunRemainsStable) {
  // 1000 periods (~6.3 s simulated): no false positives, no drift-induced
  // stalls, fills still within capacity.
  ExperimentRunner runner(adpcm::make_application());
  ExperimentOptions options;
  options.seed = 5;
  options.run_periods = 1'000;
  const auto result = runner.run(options);
  EXPECT_FALSE(result.any_detection);
  EXPECT_LE(result.fill_r2, result.sizing.replicator_capacity2);
  EXPECT_GT(result.output_checksums.size(), 980u);
}

}  // namespace
}  // namespace sccft::apps
