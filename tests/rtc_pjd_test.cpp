// PJD event-bound curve tests (Eq. 2 machinery).
#include <gtest/gtest.h>

#include "rtc/pjd.hpp"
#include "util/assert.hpp"

namespace sccft::rtc {
namespace {

TEST(PJDUpper, StrictlyPeriodicNoJitter) {
  PJDUpperCurve upper(PJD::from_ms(10, 0, 0));
  EXPECT_EQ(upper.value_at(0), 0);
  EXPECT_EQ(upper.value_at(1), 1);               // any positive window: 1 event
  EXPECT_EQ(upper.value_at(from_ms(10.0)), 1);   // half-open window of one period
  EXPECT_EQ(upper.value_at(from_ms(10.0) + 1), 2);
  EXPECT_EQ(upper.value_at(from_ms(95.0)), 10);
}

TEST(PJDUpper, JitterAddsBurst) {
  PJDUpperCurve upper(PJD::from_ms(10, 25, 0));
  // ceil((eps + 25)/10) = 3 events can cluster at a window edge.
  EXPECT_EQ(upper.value_at(1), 3);
}

TEST(PJDUpper, DelayIsCurveInvariant) {
  // The third tuple element is a phase delay; arrival curves are window-based
  // and therefore identical for any delay (see pjd.hpp header for why the
  // paper's Table 2 numbers force this interpretation).
  PJDUpperCurve with_delay(PJD::from_ms(10, 25, 10));
  PJDUpperCurve no_delay(PJD::from_ms(10, 25, 0));
  PJDLowerCurve lower_with(PJD::from_ms(10, 25, 10));
  PJDLowerCurve lower_without(PJD::from_ms(10, 25, 0));
  for (TimeNs t = 0; t <= from_ms(120.0); t += from_ms(0.5)) {
    EXPECT_EQ(with_delay.value_at(t), no_delay.value_at(t));
    EXPECT_EQ(lower_with.value_at(t), lower_without.value_at(t));
  }
}

TEST(PJDLower, NoEventsGuaranteedWithinJitter) {
  PJDLowerCurve lower(PJD::from_ms(10, 15, 0));
  EXPECT_EQ(lower.value_at(from_ms(15.0)), 0);
  EXPECT_EQ(lower.value_at(from_ms(25.0)), 1);
  EXPECT_EQ(lower.value_at(from_ms(35.0)), 2);
}

TEST(PJDLower, NeverExceedsUpper) {
  const PJD model = PJD::from_ms(7, 11, 7);
  PJDUpperCurve upper(model);
  PJDLowerCurve lower(model);
  for (TimeNs t = 0; t <= from_ms(300.0); t += from_ms(0.25)) {
    EXPECT_LE(lower.value_at(t), upper.value_at(t)) << "at " << t;
  }
}

TEST(PJDCurves, MonotoneNonDecreasing) {
  for (const PJD model : {PJD::from_ms(10, 0, 10), PJD::from_ms(6.3, 12.6, 6.3),
                          PJD::from_ms(30, 30, 30)}) {
    PJDUpperCurve upper(model);
    PJDLowerCurve lower(model);
    Tokens pu = 0;
    Tokens pl = 0;
    for (TimeNs t = 0; t <= from_ms(200.0); t += from_ms(0.5)) {
      EXPECT_GE(upper.value_at(t), pu);
      EXPECT_GE(lower.value_at(t), pl);
      pu = upper.value_at(t);
      pl = lower.value_at(t);
    }
  }
}

TEST(PJDCurves, JumpPointsBracketEveryChange) {
  // Property: the value changes exactly at the reported jump points.
  for (const PJD model : {PJD::from_ms(10, 3, 10), PJD::from_ms(6.3, 12.6, 6.3)}) {
    PJDUpperCurve upper(model);
    const TimeNs horizon = from_ms(150.0);
    const auto jumps = upper.jump_points_up_to(horizon);
    ASSERT_FALSE(jumps.empty());
    for (TimeNs at : jumps) {
      EXPECT_GT(upper.value_at(at), upper.value_at(at - 1)) << "at " << at;
    }
    // Between consecutive jump points the curve is flat.
    for (std::size_t i = 0; i + 1 < jumps.size(); ++i) {
      EXPECT_EQ(upper.value_at(jumps[i]), upper.value_at(jumps[i + 1] - 1));
    }
  }
}

TEST(PJDCurves, LongTermRateIsOnePerPeriod) {
  PJDUpperCurve upper(PJD::from_ms(10, 5, 10));
  PJDLowerCurve lower(PJD::from_ms(10, 5, 10));
  EXPECT_DOUBLE_EQ(upper.long_term_rate(), 1.0 / from_ms(10.0));
  EXPECT_DOUBLE_EQ(lower.long_term_rate(), 1.0 / from_ms(10.0));
}

TEST(PJD, FromMsConvertsExactly) {
  const PJD model = PJD::from_ms(6.3, 0.1, 6.3);
  EXPECT_EQ(model.period, 6'300'000);
  EXPECT_EQ(model.jitter, 100'000);
  EXPECT_EQ(model.delay, 6'300'000);
}

TEST(PJD, InvalidModelsRejected) {
  EXPECT_THROW(PJDUpperCurve(PJD{0, 0, 0}), util::ContractViolation);
  EXPECT_THROW(PJDLowerCurve(PJD{-5, 0, 0}), util::ContractViolation);
  EXPECT_THROW(PJDUpperCurve(PJD{10, -1, 0}), util::ContractViolation);
}

TEST(StaircaseCurve, EvaluatesJumpsAndTail) {
  StaircaseCurve curve(1, {{10, 2}, {20, 1}}, 20, 5, 3);
  EXPECT_EQ(curve.value_at(0), 1);
  EXPECT_EQ(curve.value_at(9), 1);
  EXPECT_EQ(curve.value_at(10), 3);
  EXPECT_EQ(curve.value_at(20), 4);
  EXPECT_EQ(curve.value_at(24), 4);
  EXPECT_EQ(curve.value_at(25), 7);   // tail: +3 per 5 after 20
  EXPECT_EQ(curve.value_at(30), 10);
  EXPECT_DOUBLE_EQ(curve.long_term_rate(), 3.0 / 5.0);
}

TEST(StaircaseCurve, RejectsNonIncreasingJumps) {
  EXPECT_THROW(StaircaseCurve(0, {{10, 1}, {10, 1}}, 0, 0, 0),
               util::ContractViolation);
  EXPECT_THROW(StaircaseCurve(0, {{10, 0}}, 0, 0, 0), util::ContractViolation);
}

TEST(ZeroCurveTest, AlwaysZero) {
  ZeroCurve zero;
  EXPECT_EQ(zero.value_at(0), 0);
  EXPECT_EQ(zero.value_at(from_ms(1000.0)), 0);
  EXPECT_TRUE(zero.jump_points_up_to(from_ms(1000.0)).empty());
}

TEST(CurveRef, DeepCopies) {
  CurveRef a = make_curve<PJDUpperCurve>(PJD::from_ms(10, 0, 10));
  CurveRef b = a;  // copy
  EXPECT_EQ(a->value_at(from_ms(5.0)), b->value_at(from_ms(5.0)));
  EXPECT_NE(&a.get(), &b.get());
}

}  // namespace
}  // namespace sccft::rtc
