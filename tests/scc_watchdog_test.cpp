// Watchdog timer tests: the deadline edge (a kick landing exactly at the
// deadline still counts as alive), expiry firing the reset line exactly once
// per silent window, re-arming after a reset, and per-channel independence.
#include <gtest/gtest.h>

#include <vector>

#include "scc/watchdog.hpp"
#include "sim/simulator.hpp"
#include "trace/bus.hpp"

namespace sccft::scc {
namespace {

struct ResetLog : trace::Sink {
  std::vector<trace::Event> events;
  void on_event(const trace::Event& event) override { events.push_back(event); }
};

TEST(Watchdog, KickExactlyAtTheDeadlineStillCountsAsAlive) {
  sim::Simulator sim;
  WatchdogTimer watchdog(sim, {.deadline = rtc::from_ms(100.0), .name = "wd"});
  int handler_fired = 0;
  const int channel =
      watchdog.add_channel("core", TileId{3}, [&] { ++handler_fired; });
  watchdog.arm_all();

  // Kick at exactly last_kick + deadline, four times in a row. The check
  // runs one tick later and must see each kick.
  for (int i = 1; i <= 4; ++i) {
    sim.schedule_at(i * rtc::from_ms(100.0), [&] { watchdog.kick(channel); });
  }
  sim.run_until(rtc::from_ms(450.0));

  EXPECT_EQ(handler_fired, 0);
  EXPECT_EQ(watchdog.resets(channel), 0u);
  EXPECT_EQ(watchdog.total_resets(), 0u);
  EXPECT_EQ(watchdog.last_kick(channel), rtc::from_ms(400.0));
  EXPECT_EQ(sim.trace().metrics().counter("wd.core.resets"), 0u);
}

TEST(Watchdog, KickOneTickTooLateIsAReset) {
  sim::Simulator sim;
  WatchdogTimer watchdog(sim, {.deadline = rtc::from_ms(100.0), .name = "wd"});
  int handler_fired = 0;
  const int channel =
      watchdog.add_channel("core", TileId{0}, [&] { ++handler_fired; });
  watchdog.arm_all();
  // The check fires at deadline + 1; a kick at deadline + 2 arrives after it.
  sim.schedule_at(rtc::from_ms(100.0) + 2, [&] { watchdog.kick(channel); });
  sim.run_until(rtc::from_ms(150.0));

  EXPECT_EQ(handler_fired, 1);
  EXPECT_EQ(watchdog.resets(channel), 1u);
}

TEST(Watchdog, SilentChannelResetsBackToBackAndReArms) {
  sim::Simulator sim;
  ResetLog log;
  sim.trace().subscribe(&log, trace::bit(trace::EventKind::kWatchdogReset));
  WatchdogTimer watchdog(sim, {.deadline = rtc::from_ms(100.0), .name = "wd"});
  int handler_fired = 0;
  const int channel =
      watchdog.add_channel("core", TileId{5}, [&] { ++handler_fired; });
  watchdog.arm_all();
  // Never kicked: expiries at ~100 ms, ~200 ms, ~300 ms (each reset restarts
  // the kick clock at the reset instant).
  sim.run_until(rtc::from_ms(350.0));

  EXPECT_EQ(handler_fired, 3);
  EXPECT_EQ(watchdog.resets(channel), 3u);
  EXPECT_EQ(sim.trace().metrics().counter("wd.core.resets"), 3u);

  // The always-on event stream carries (channel, tile, cumulative resets).
  ASSERT_EQ(log.events.size(), 3u);
  for (std::size_t i = 0; i < log.events.size(); ++i) {
    EXPECT_EQ(log.events[i].a, channel);
    EXPECT_EQ(log.events[i].b, 5);
    EXPECT_EQ(log.events[i].c, static_cast<std::int64_t>(i + 1));
    if (i > 0) EXPECT_GT(log.events[i].time, log.events[i - 1].time);
  }
  sim.trace().unsubscribe(&log);
}

TEST(Watchdog, ChannelsExpireIndependently) {
  sim::Simulator sim;
  WatchdogTimer watchdog(sim, {.deadline = rtc::from_ms(100.0), .name = "wd"});
  int kicked_resets = 0, silent_resets = 0;
  const int kicked =
      watchdog.add_channel("kicked", TileId{1}, [&] { ++kicked_resets; });
  const int silent =
      watchdog.add_channel("silent", TileId{2}, [&] { ++silent_resets; });
  ASSERT_EQ(watchdog.channel_count(), 2);
  watchdog.arm_all();
  for (int i = 1; i <= 6; ++i) {
    sim.schedule_at(i * rtc::from_ms(50.0), [&] { watchdog.kick(kicked); });
  }
  sim.run_until(rtc::from_ms(320.0));

  EXPECT_EQ(kicked_resets, 0);
  EXPECT_EQ(watchdog.resets(kicked), 0u);
  EXPECT_EQ(silent_resets, 3);
  EXPECT_EQ(watchdog.resets(silent), 3u);
  EXPECT_EQ(watchdog.total_resets(), 3u);
}

}  // namespace
}  // namespace sccft::scc
