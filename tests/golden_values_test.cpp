// Golden-value and remaining-path tests: pins down derived quantities that
// the benches print (so regressions show up in ctest, not just in diffed
// bench output), and covers a few paths no other suite exercises.
#include <gtest/gtest.h>

#include "apps/common/experiment.hpp"
#include "apps/adpcm/app.hpp"
#include "apps/h264/app.hpp"
#include "apps/mjpeg/app.hpp"
#include "ft/framework.hpp"
#include "kpn/network.hpp"
#include "rtc/sizing.hpp"

namespace sccft {
namespace {

TEST(GoldenValues, H264SizingPinned) {
  // The Table 2 analog for H.264 (asymmetric models <30,1/4/20,30>).
  const auto app = apps::h264::make_application();
  const auto report = rtc::analyze_duplicated_network(app.timing.to_model(),
                                                      app.timing.default_horizon());
  EXPECT_EQ(report.replicator_capacity1, 2);
  EXPECT_EQ(report.replicator_capacity2, 2);
  EXPECT_EQ(report.selector_capacity1, 4);
  EXPECT_EQ(report.selector_capacity2, 4);
  EXPECT_EQ(report.selector_initial1, 2);
  EXPECT_EQ(report.selector_initial2, 2);
  EXPECT_EQ(report.selector_threshold, 3);
  EXPECT_EQ(report.replicator_overflow_bound, rtc::from_ms(91.0));
  EXPECT_EQ(report.selector_latency_bound, rtc::from_ms(170.0));
}

TEST(GoldenValues, MinimizedJitterGivesUnitCapacity) {
  // Table 3's regime: zero replica jitter => |R_i| = 1 and D = 2.
  const auto app = apps::minimize_replica_jitter(apps::mjpeg::make_application());
  const auto report = rtc::analyze_duplicated_network(app.timing.to_model(),
                                                      app.timing.default_horizon());
  EXPECT_EQ(report.replicator_capacity1, 1);
  EXPECT_EQ(report.replicator_capacity2, 1);
  EXPECT_EQ(report.selector_threshold, 2);
}

TEST(Harness, PhysicalPreloadPathWorks) {
  // The optional Eq. (4) physical preload: consumer can read the initial
  // tokens before any replica has produced.
  sim::Simulator simulator;
  kpn::Network net(simulator);
  ft::FaultTolerantHarness harness(
      net, {.timing = apps::mjpeg::make_application().timing,
            .preload_initial_tokens = true});
  EXPECT_EQ(harness.selector().fill(), 3);  // max(|S1|_0, |S2|_0)
  int preload_reads = 0;
  while (auto token = harness.selector().try_read()) {
    EXPECT_EQ(token->size_bytes(), 0);  // marker tokens
    ++preload_reads;
  }
  EXPECT_EQ(preload_reads, 3);
}

TEST(Channels, FifoResetClearsEverything) {
  sim::Simulator simulator;
  kpn::FifoChannel fifo(simulator, "f", 4);
  ASSERT_TRUE(fifo.try_write(kpn::Token(std::vector<std::uint8_t>{1}, 0, 0)));
  ASSERT_TRUE(fifo.try_write(kpn::Token(std::vector<std::uint8_t>{2}, 1, 0)));
  EXPECT_EQ(fifo.fill(), 2);
  fifo.reset();
  EXPECT_EQ(fifo.fill(), 0);
  EXPECT_FALSE(fifo.try_read().has_value());
  // Usable again after reset.
  ASSERT_TRUE(fifo.try_write(kpn::Token(std::vector<std::uint8_t>{3}, 2, 0)));
  EXPECT_EQ(fifo.fill(), 1);
}

TEST(Experiment, RenderTopologyCountsScaleWithStructure) {
  // Figure-1 structural law used by the bench: duplicated edge count is
  // exactly twice the reference's, for every topology shape.
  for (const char* name : {"mjpeg", "adpcm", "h264"}) {
    apps::ApplicationSpec spec;
    if (std::string(name) == "mjpeg") spec = apps::mjpeg::make_application();
    else if (std::string(name) == "adpcm") spec = apps::adpcm::make_application();
    else spec = apps::h264::make_application();
    apps::ExperimentRunner runner(std::move(spec));
    auto count_lines = [](const std::string& text) {
      return std::count(text.begin(), text.end(), '\n');
    };
    EXPECT_EQ(count_lines(runner.render_topology(true)),
              2 * count_lines(runner.render_topology(false)))
        << name;
  }
}

TEST(GoldenValues, AdpcmDetectionDeterministicAcrossRebuilds) {
  // The exact latency for a fixed seed is part of the repo's reproducibility
  // contract (any change to event ordering or RNG streams shows up here).
  apps::ExperimentRunner runner(apps::adpcm::make_application());
  apps::ExperimentOptions options;
  options.seed = 1;
  options.run_periods = 200;
  options.fault_after_periods = 120;
  options.inject_fault = true;
  const auto a = runner.run(options);
  const auto b = runner.run(options);
  ASSERT_TRUE(a.first_latency.has_value());
  EXPECT_EQ(*a.first_latency, *b.first_latency);
  EXPECT_EQ(a.fault_injected_at, b.fault_injected_at);
}

}  // namespace
}  // namespace sccft
