// ReplicatorChannel unit tests: rules 1-3 of Section 3.1 and the overflow
// fault detection of Section 3.3.
#include <gtest/gtest.h>

#include <vector>

#include "ft/replicator.hpp"
#include "kpn/network.hpp"
#include "kpn/process.hpp"

namespace sccft::ft {
namespace {

using kpn::Token;

Token make_token(std::uint64_t seq) {
  return Token(std::vector<std::uint8_t>{static_cast<std::uint8_t>(seq)}, seq, 0);
}

struct Fixture {
  sim::Simulator sim;
  kpn::Network net{sim};
  ReplicatorChannel* replicator = nullptr;

  explicit Fixture(rtc::Tokens cap1 = 2, rtc::Tokens cap2 = 3) {
    replicator = &net.adopt_channel(std::make_unique<ReplicatorChannel>(
        sim, "rep", ReplicatorChannel::Config{cap1, cap2, std::nullopt, std::nullopt}));
  }
};

TEST(Replicator, DuplicatesEveryTokenToBothQueues) {
  Fixture fx;
  std::vector<std::uint64_t> got1, got2;
  fx.net.add_process("w", scc::CoreId{0}, 1, [&](kpn::ProcessContext& ctx) -> sim::Task {
    for (std::uint64_t k = 0; k < 6; ++k) {
      co_await kpn::write(*fx.replicator, make_token(k));
      co_await ctx.delay(100);
    }
  });
  fx.net.add_process("r1", scc::CoreId{2}, 2, [&](kpn::ProcessContext& ctx) -> sim::Task {
    while (true) {
      Token t = co_await kpn::read(fx.replicator->read_interface(ReplicaIndex::kReplica1));
      got1.push_back(t.seq());
      co_await ctx.delay(50);
    }
  });
  fx.net.add_process("r2", scc::CoreId{4}, 3, [&](kpn::ProcessContext& ctx) -> sim::Task {
    while (true) {
      Token t = co_await kpn::read(fx.replicator->read_interface(ReplicaIndex::kReplica2));
      got2.push_back(t.seq());
      co_await ctx.delay(70);
    }
  });
  fx.net.run_until(100'000);
  EXPECT_EQ(got1, (std::vector<std::uint64_t>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(got2, got1);
  EXPECT_FALSE(fx.replicator->fault(ReplicaIndex::kReplica1));
  EXPECT_FALSE(fx.replicator->fault(ReplicaIndex::kReplica2));
}

TEST(Replicator, SpaceFillAccounting) {
  Fixture fx(2, 3);
  EXPECT_EQ(fx.replicator->space(ReplicaIndex::kReplica1), 2);
  EXPECT_EQ(fx.replicator->space(ReplicaIndex::kReplica2), 3);
  EXPECT_TRUE(fx.replicator->try_write(make_token(0)));
  EXPECT_EQ(fx.replicator->fill(ReplicaIndex::kReplica1), 1);
  EXPECT_EQ(fx.replicator->fill(ReplicaIndex::kReplica2), 1);
  EXPECT_EQ(fx.replicator->space(ReplicaIndex::kReplica1), 1);
  EXPECT_EQ(fx.replicator->space(ReplicaIndex::kReplica2), 2);
}

TEST(Replicator, OverflowDeclaresFaultAndStopsInsertion) {
  Fixture fx(2, 3);
  std::vector<DetectionRecord> records;
  fx.replicator->set_fault_observer(
      [&](const DetectionRecord& r) { records.push_back(r); });

  // Nobody reads queue 1. Writes 1..2 fill it; write 3 finds space_1 == 0.
  EXPECT_TRUE(fx.replicator->try_write(make_token(0)));
  EXPECT_TRUE(fx.replicator->try_write(make_token(1)));
  EXPECT_FALSE(fx.replicator->fault(ReplicaIndex::kReplica1));
  EXPECT_TRUE(fx.replicator->try_write(make_token(2)));  // never blocks
  EXPECT_TRUE(fx.replicator->fault(ReplicaIndex::kReplica1));
  EXPECT_FALSE(fx.replicator->fault(ReplicaIndex::kReplica2));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].replica, ReplicaIndex::kReplica1);
  EXPECT_EQ(records[0].rule, DetectionRule::kReplicatorOverflow);

  // Queue 1 frozen at capacity; queue 2 keeps receiving.
  EXPECT_EQ(fx.replicator->fill(ReplicaIndex::kReplica1), 2);
  EXPECT_EQ(fx.replicator->fill(ReplicaIndex::kReplica2), 3);
}

TEST(Replicator, HealthyReplicaUnaffectedByFault) {
  // The Section 1.1 "deadlocked non-faulty replica" scenario must not occur:
  // after queue 1 faults, the producer continues and queue 2 sees every token.
  Fixture fx(1, 2);
  std::vector<std::uint64_t> got2;
  fx.net.add_process("w", scc::CoreId{0}, 1, [&](kpn::ProcessContext& ctx) -> sim::Task {
    for (std::uint64_t k = 0; k < 20; ++k) {
      co_await kpn::write(*fx.replicator, make_token(k));
      co_await ctx.delay(100);
    }
  });
  // Replica 1 never reads (dead from the start). Replica 2 reads everything.
  fx.net.add_process("r2", scc::CoreId{2}, 2, [&](kpn::ProcessContext& ctx) -> sim::Task {
    while (true) {
      Token t = co_await kpn::read(fx.replicator->read_interface(ReplicaIndex::kReplica2));
      got2.push_back(t.seq());
      co_await ctx.delay(10);
    }
  });
  fx.net.run_until(100'000);
  EXPECT_TRUE(fx.replicator->fault(ReplicaIndex::kReplica1));
  ASSERT_EQ(got2.size(), 20u);
  for (std::uint64_t k = 0; k < 20; ++k) EXPECT_EQ(got2[k], k);
}

TEST(Replicator, DetectionTimestampIsWriteAttemptTime) {
  Fixture fx(1, 3);
  fx.net.add_process("w", scc::CoreId{0}, 1, [&](kpn::ProcessContext& ctx) -> sim::Task {
    co_await ctx.delay(1'000);
    co_await kpn::write(*fx.replicator, make_token(0));  // fills queue 1
    co_await ctx.delay(1'000);
    co_await kpn::write(*fx.replicator, make_token(1));  // detects at t=2000
  });
  fx.net.add_process("r2", scc::CoreId{2}, 2, [&](kpn::ProcessContext&) -> sim::Task {
    while (true) {
      (void)co_await kpn::read(fx.replicator->read_interface(ReplicaIndex::kReplica2));
    }
  });
  fx.net.run_until(10'000);
  const auto detection = fx.replicator->detection(ReplicaIndex::kReplica1);
  ASSERT_TRUE(detection.has_value());
  EXPECT_EQ(detection->detected_at, 2'000);
}

TEST(Replicator, PerQueueMaxFillTracked) {
  Fixture fx(2, 3);
  (void)fx.replicator->try_write(make_token(0));
  (void)fx.replicator->try_write(make_token(1));
  EXPECT_EQ(fx.replicator->queue_stats(ReplicaIndex::kReplica1).max_fill, 2);
  EXPECT_EQ(fx.replicator->queue_stats(ReplicaIndex::kReplica2).max_fill, 2);
}

TEST(Replicator, SlowConsumptionRateEventuallyFlagged) {
  // Section 3.3: "a timing fault wherein the rate at which a replica consumes
  // tokens from the producer is lower than predicted" is also detected.
  Fixture fx(2, 2);
  fx.net.add_process("w", scc::CoreId{0}, 1, [&](kpn::ProcessContext& ctx) -> sim::Task {
    for (std::uint64_t k = 0;; ++k) {
      co_await kpn::write(*fx.replicator, make_token(k));
      co_await ctx.delay(100);
    }
  });
  // Replica 1 consumes at 1/4 the producer rate; replica 2 keeps up.
  fx.net.add_process("r1", scc::CoreId{2}, 2, [&](kpn::ProcessContext& ctx) -> sim::Task {
    while (true) {
      (void)co_await kpn::read(fx.replicator->read_interface(ReplicaIndex::kReplica1));
      co_await ctx.delay(400);
    }
  });
  fx.net.add_process("r2", scc::CoreId{4}, 3, [&](kpn::ProcessContext& ctx) -> sim::Task {
    while (true) {
      (void)co_await kpn::read(fx.replicator->read_interface(ReplicaIndex::kReplica2));
      co_await ctx.delay(90);
    }
  });
  fx.net.run_until(100'000);
  EXPECT_TRUE(fx.replicator->fault(ReplicaIndex::kReplica1));
  EXPECT_FALSE(fx.replicator->fault(ReplicaIndex::kReplica2));
}

TEST(Replicator, InvalidCapacitiesRejected) {
  sim::Simulator sim;
  EXPECT_THROW(ReplicatorChannel(sim, "rep", {0, 1, std::nullopt, std::nullopt}),
               util::ContractViolation);
}

TEST(Replicator, ControlMemorySmall) {
  Fixture fx;
  // Paper Table 2: ~1.5 KB of control structures at the replicator.
  EXPECT_LT(fx.replicator->control_memory_bytes(), 2'048u);
}

}  // namespace
}  // namespace sccft::ft
