// H.264-style intra codec tests: transform identities, quantization,
// prediction, round-trip quality.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/common/generators.hpp"
#include "apps/h264/h264_codec.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace sccft::apps::h264 {
namespace {

double psnr(const Frame& a, const Frame& b) {
  double mse = 0.0;
  for (std::size_t i = 0; i < a.pixels.size(); ++i) {
    const double d = static_cast<double>(a.pixels[i]) - static_cast<double>(b.pixels[i]);
    mse += d * d;
  }
  mse /= static_cast<double>(a.pixels.size());
  if (mse == 0.0) return 99.0;
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

TEST(Transform, DcOfFlatBlock) {
  int block[16];
  std::fill_n(block, 16, 5);
  int coeffs[16];
  forward_transform4x4(block, coeffs);
  EXPECT_EQ(coeffs[0], 16 * 5);  // sum of all samples
  for (int i = 1; i < 16; ++i) EXPECT_EQ(coeffs[i], 0);
}

TEST(Transform, QuantDequantInverseRoundTripsSmallResiduals) {
  // The full standard chain at QP=0 must reproduce small residuals exactly
  // (this is the H.264 design property the MF/V tables encode).
  util::Xoshiro256 rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    int residual[16];
    for (auto& r : residual) r = static_cast<int>(rng.uniform_int(-64, 64));
    int coeffs[16];
    forward_transform4x4(residual, coeffs);
    int levels[16], dequant[16];
    for (int y = 0; y < 4; ++y) {
      for (int x = 0; x < 4; ++x) {
        levels[y * 4 + x] = quantize(coeffs[y * 4 + x], x, y, 0);
        dequant[y * 4 + x] = dequantize(levels[y * 4 + x], x, y, 0);
      }
    }
    int back[16];
    inverse_transform4x4(dequant, back);
    for (int i = 0; i < 16; ++i) {
      EXPECT_NEAR(back[i], residual[i], 2) << "trial " << trial << " idx " << i;
    }
  }
}

TEST(Transform, HigherQpCoarser) {
  int residual[16];
  for (int i = 0; i < 16; ++i) residual[i] = (i * 13) % 50 - 25;
  int coeffs[16];
  forward_transform4x4(residual, coeffs);
  int nonzero_low = 0, nonzero_high = 0;
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) {
      if (quantize(coeffs[y * 4 + x], x, y, 4) != 0) ++nonzero_low;
      if (quantize(coeffs[y * 4 + x], x, y, 40) != 0) ++nonzero_high;
    }
  }
  EXPECT_GE(nonzero_low, nonzero_high);
}

TEST(Quant, SignSymmetric) {
  for (int qp : {0, 10, 26, 40}) {
    for (int c : {7, 123, 999}) {
      EXPECT_EQ(quantize(-c, 1, 2, qp), -quantize(c, 1, 2, qp));
    }
  }
}

TEST(Codec, RoundTripQuality) {
  const Frame frame = generate_frame(176, 144, 2, 2014);
  const auto encoded = encode_frame(frame, 20);
  const Frame decoded = decode_frame(encoded);
  EXPECT_EQ(decoded.width, 176);
  EXPECT_EQ(decoded.height, 144);
  EXPECT_GT(psnr(frame, decoded), 32.0);
}

TEST(Codec, QpControlsRateAndQuality) {
  const Frame frame = generate_frame(176, 144, 6, 2014);
  const auto fine = encode_frame(frame, 10);
  const auto coarse = encode_frame(frame, 38);
  EXPECT_GT(fine.size(), coarse.size());
  EXPECT_GT(psnr(frame, decode_frame(fine)), psnr(frame, decode_frame(coarse)));
}

TEST(Codec, CompressesRealContent) {
  const Frame frame = generate_frame(176, 144, 8, 2014);
  const auto encoded = encode_frame(frame, 26);
  EXPECT_LT(encoded.size(), frame.pixels.size() / 2);  // > 2:1 on raw
}

TEST(Codec, EncoderDecoderReconstructionsAgreeExactly) {
  // The encoder's in-loop reconstruction must equal the decoder's output —
  // the fundamental closed-loop property of intra prediction. We verify it
  // indirectly: decode(encode(x)) twice gives identical output, and
  // re-encoding the decoded frame is a fixed point within a small tolerance.
  const Frame frame = generate_frame(176, 144, 12, 2014);
  const auto encoded = encode_frame(frame, 20);
  const Frame once = decode_frame(encoded);
  const Frame twice = decode_frame(encode_frame(once, 20));
  EXPECT_GT(psnr(once, twice), 40.0);
}

TEST(Codec, Deterministic) {
  const Frame frame = generate_frame(176, 144, 3, 2014);
  EXPECT_EQ(encode_frame(frame, 26), encode_frame(frame, 26));
}

TEST(Codec, RejectsBadInput) {
  Frame bad{10, 10, std::vector<std::uint8_t>(100)};
  EXPECT_THROW((void)encode_frame(bad, 26), util::ContractViolation);
  Frame frame = generate_frame(16, 16, 0, 1);
  EXPECT_THROW((void)encode_frame(frame, 99), util::ContractViolation);
  std::vector<std::uint8_t> garbage{'Z', 0, 0, 0, 0, 0};
  EXPECT_THROW((void)decode_frame(garbage), util::ContractViolation);
}

TEST(Codec, PredictionModesAllExercised) {
  // A frame with strong vertical and horizontal structure plus flat areas
  // should produce a bitstream that decodes correctly (all three modes hit).
  Frame frame{32, 32, std::vector<std::uint8_t>(1024)};
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      std::uint8_t v = 128;
      if (x < 16) v = static_cast<std::uint8_t>(x * 8);         // vertical edges
      else if (y < 16) v = static_cast<std::uint8_t>(y * 8);    // horizontal
      frame.pixels[static_cast<std::size_t>(y) * 32 + x] = v;
    }
  }
  const Frame decoded = decode_frame(encode_frame(frame, 16));
  EXPECT_GT(psnr(frame, decoded), 30.0);
}

}  // namespace
}  // namespace sccft::apps::h264
