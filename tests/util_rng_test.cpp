// Deterministic RNG tests.
#include <gtest/gtest.h>

#include <set>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace sccft::util {
namespace {

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Xoshiro256, UniformIntInRange) {
  Xoshiro256 rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.uniform_int(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 9u);  // all 9 values hit over 10k draws
}

TEST(Xoshiro256, UniformIntDegenerateRange) {
  Xoshiro256 rng(7);
  EXPECT_EQ(rng.uniform_int(4, 4), 4);
  EXPECT_THROW((void)rng.uniform_int(5, 4), ContractViolation);
}

TEST(Xoshiro256, Uniform01InHalfOpenUnitInterval) {
  Xoshiro256 rng(9);
  double sum = 0.0;
  for (int i = 0; i < 20'000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20'000.0, 0.5, 0.02);
}

TEST(Xoshiro256, UniformIntUnbiasedMean) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  for (int i = 0; i < 50'000; ++i) sum += static_cast<double>(rng.uniform_int(0, 9));
  EXPECT_NEAR(sum / 50'000.0, 4.5, 0.1);
}

TEST(Xoshiro256, NormalMomentsRoughlyStandard) {
  Xoshiro256 rng(13);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 50'000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.03);
  EXPECT_NEAR(sq / kN, 1.0, 0.05);
}

TEST(Xoshiro256, NormalScaled) {
  Xoshiro256 rng(17);
  double sum = 0.0;
  for (int i = 0; i < 20'000; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / 20'000.0, 10.0, 0.1);
}

TEST(Xoshiro256, ChanceProbability) {
  Xoshiro256 rng(19);
  int hits = 0;
  for (int i = 0; i < 50'000; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 50'000.0, 0.3, 0.02);
  EXPECT_THROW((void)rng.chance(1.5), ContractViolation);
}

TEST(SplitMix64Test, KnownNonZeroStream) {
  SplitMix64 sm(0);
  const auto a = sm.next();
  const auto b = sm.next();
  EXPECT_NE(a, 0u);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace sccft::util
