// Parameterized property sweeps over the Section 3.4 analysis: monotonicity,
// scaling, and symmetry laws that must hold for every PJD configuration —
// plus brute-force oracles for the min-plus operators' candidate sets.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "rtc/curve.hpp"
#include "rtc/minplus.hpp"
#include "rtc/pjd.hpp"
#include "rtc/sizing.hpp"
#include "util/rng.hpp"

namespace sccft::rtc {
namespace {

struct ModelCase {
  PJD producer;
  PJD slow_replica;
};

class SizingLaws : public ::testing::TestWithParam<ModelCase> {
 protected:
  static constexpr TimeNs kHorizon = 5'000 * kNsPerMs;
};

TEST_P(SizingLaws, CapacityMonotoneInConsumerJitter) {
  const auto& param = GetParam();
  PJDUpperCurve producer_upper(param.producer);
  Tokens previous = 0;
  for (double factor : {0.5, 1.0, 1.5, 2.0}) {
    PJD consumer = param.slow_replica;
    consumer.jitter = static_cast<TimeNs>(consumer.jitter * factor);
    PJDLowerCurve lower(consumer);
    const auto capacity = min_fifo_capacity(producer_upper, lower, kHorizon);
    ASSERT_TRUE(capacity.has_value());
    EXPECT_GE(*capacity, previous);
    previous = *capacity;
  }
}

TEST_P(SizingLaws, ThresholdSymmetricUnderSwap) {
  const auto& param = GetParam();
  PJDUpperCurve u1(param.producer), u2(param.slow_replica);
  PJDLowerCurve l1(param.producer), l2(param.slow_replica);
  const auto d_ab = divergence_threshold(u1, l1, u2, l2, kHorizon);
  const auto d_ba = divergence_threshold(u2, l2, u1, l1, kHorizon);
  ASSERT_TRUE(d_ab.has_value());
  ASSERT_TRUE(d_ba.has_value());
  EXPECT_EQ(*d_ab, *d_ba);
}

TEST_P(SizingLaws, TimeScalingLaw) {
  // Scaling all time parameters by k scales every latency bound by k and
  // leaves all token quantities (capacities, D) unchanged.
  const auto& param = GetParam();
  auto scaled = [](const PJD& model, int k) {
    return PJD{model.period * k, model.jitter * k, model.delay * k};
  };
  for (int k : {2, 5}) {
    PJDUpperCurve u1(param.producer), u2(param.slow_replica);
    PJDLowerCurve l1(param.producer), l2(param.slow_replica);
    PJDUpperCurve su1(scaled(param.producer, k)), su2(scaled(param.slow_replica, k));
    PJDLowerCurve sl1(scaled(param.producer, k)), sl2(scaled(param.slow_replica, k));

    const auto capacity = min_fifo_capacity(u1, l2, kHorizon);
    const auto scaled_capacity = min_fifo_capacity(su1, sl2, k * kHorizon);
    ASSERT_TRUE(capacity && scaled_capacity);
    EXPECT_EQ(*capacity, *scaled_capacity);

    const auto d = divergence_threshold(u1, l1, u2, l2, kHorizon);
    const auto sd = divergence_threshold(su1, sl1, su2, sl2, k * kHorizon);
    ASSERT_TRUE(d && sd);
    EXPECT_EQ(*d, *sd);

    const auto bound = detection_latency_bound_silence(l2, *d, kHorizon);
    const auto scaled_bound = detection_latency_bound_silence(sl2, *sd, k * kHorizon);
    ASSERT_TRUE(bound && scaled_bound);
    EXPECT_EQ(*scaled_bound, k * *bound);
  }
}

TEST_P(SizingLaws, LatencyBoundDominatesCapacityFillTime) {
  // The divergence-rule bound (2D-1 tokens) is never faster than one token.
  const auto& param = GetParam();
  PJDUpperCurve u1(param.producer), u2(param.slow_replica);
  PJDLowerCurve l1(param.producer), l2(param.slow_replica);
  const auto d = divergence_threshold(u1, l1, u2, l2, kHorizon);
  ASSERT_TRUE(d.has_value());
  const auto bound = detection_latency_bound_silence(l2, *d, kHorizon);
  ASSERT_TRUE(bound.has_value());
  EXPECT_GE(*bound, param.slow_replica.period);
}

TEST_P(SizingLaws, ReportInternallyConsistent) {
  const auto& param = GetParam();
  NetworkTimingModel model;
  auto fill = [](const PJD& pjd, CurveRef& upper, CurveRef& lower) {
    upper = make_curve<PJDUpperCurve>(pjd);
    lower = make_curve<PJDLowerCurve>(pjd);
  };
  fill(param.producer, model.producer_upper, model.producer_lower);
  fill(param.producer, model.replica1_in_upper, model.replica1_in_lower);
  fill(param.slow_replica, model.replica2_in_upper, model.replica2_in_lower);
  fill(param.producer, model.replica1_out_upper, model.replica1_out_lower);
  fill(param.slow_replica, model.replica2_out_upper, model.replica2_out_lower);
  fill(param.producer, model.consumer_upper, model.consumer_lower);
  const auto report = analyze_duplicated_network(model, kHorizon);

  // The slow replica always needs at least as much of everything.
  EXPECT_GE(report.replicator_capacity2, report.replicator_capacity1);
  EXPECT_GE(report.selector_capacity2, report.selector_capacity1);
  EXPECT_GE(report.selector_initial2, report.selector_initial1);
  // Selector capacity covers its initial fill.
  EXPECT_GT(report.selector_capacity1, report.selector_initial1);
  EXPECT_GT(report.selector_capacity2, report.selector_initial2);
  // Thresholds and bounds are positive and ordered sanely.
  EXPECT_GE(report.selector_threshold, 2);
  EXPECT_GT(report.selector_latency_bound, 0);
  EXPECT_GT(report.replicator_overflow_bound, 0);
  // Divergence-rule bound is never tighter than the overflow-rule bound by
  // more than the capacity/threshold relationship allows.
  EXPECT_GE(report.replicator_divergence_bound, report.replicator_overflow_bound / 4);
}

// --- min-plus operator oracles ---------------------------------------------
// minplus_conv_at / minplus_deconv_at evaluate the inf/sup over lambda by
// probing a *candidate set* (endpoints, jump points, and their reflections)
// instead of every lambda. The candidate set is asymmetric between f and g
// (f is probed at its jump points, g at delta minus its own), so these
// oracles cross-check it exhaustively: on small random staircases the exact
// answer is the min/max over every integer lambda in range.

StaircaseCurve random_staircase(util::Xoshiro256& rng, const std::string& name) {
  const Tokens base = rng.uniform_int(0, 3);
  const int jump_count = static_cast<int>(rng.uniform_int(0, 6));
  std::vector<TimeNs> ats;
  for (int j = 0; j < jump_count; ++j) {
    ats.push_back(rng.uniform_int(1, 40));  // small: brute force stays cheap
  }
  std::sort(ats.begin(), ats.end());
  ats.erase(std::unique(ats.begin(), ats.end()), ats.end());
  std::vector<StaircaseCurve::Jump> jumps;
  for (const TimeNs at : ats) {
    jumps.push_back({at, rng.uniform_int(1, 4)});
  }
  return StaircaseCurve(base, std::move(jumps), 0, 0, 0, name);
}

Tokens conv_oracle(const Curve& f, const Curve& g, TimeNs delta) {
  Tokens best = std::numeric_limits<Tokens>::max();
  for (TimeNs lambda = 0; lambda <= delta; ++lambda) {
    best = std::min(best, f.value_at(lambda) + g.value_at(delta - lambda));
  }
  return best;
}

Tokens deconv_oracle(const Curve& f, const Curve& g, TimeNs delta, TimeNs horizon) {
  Tokens best = std::numeric_limits<Tokens>::min();
  for (TimeNs lambda = 0; lambda <= horizon; ++lambda) {
    best = std::max(best, f.value_at(delta + lambda) - g.value_at(lambda));
  }
  return best;
}

TEST(MinPlusOracle, ConvMatchesBruteForceOnRandomStaircases) {
  util::Xoshiro256 rng(2014);
  for (int trial = 0; trial < 200; ++trial) {
    const StaircaseCurve f = random_staircase(rng, "f");
    const StaircaseCurve g = random_staircase(rng, "g");
    for (TimeNs delta = 0; delta <= 50; ++delta) {
      ASSERT_EQ(minplus_conv_at(f, g, delta), conv_oracle(f, g, delta))
          << "trial " << trial << " delta " << delta << " f=" << f.describe()
          << " g=" << g.describe();
    }
  }
}

TEST(MinPlusOracle, ConvIsCommutativeOnRandomStaircases) {
  util::Xoshiro256 rng(41);
  for (int trial = 0; trial < 100; ++trial) {
    const StaircaseCurve f = random_staircase(rng, "f");
    const StaircaseCurve g = random_staircase(rng, "g");
    for (TimeNs delta = 0; delta <= 50; ++delta) {
      ASSERT_EQ(minplus_conv_at(f, g, delta), minplus_conv_at(g, f, delta))
          << "trial " << trial << " delta " << delta;
    }
  }
}

TEST(MinPlusOracle, DeconvMatchesBruteForceOnRandomStaircases) {
  util::Xoshiro256 rng(77);
  constexpr TimeNs kHorizon = 50;
  for (int trial = 0; trial < 200; ++trial) {
    const StaircaseCurve f = random_staircase(rng, "f");
    const StaircaseCurve g = random_staircase(rng, "g");
    for (TimeNs delta = 0; delta <= 50; delta += 5) {
      ASSERT_EQ(minplus_deconv_at(f, g, delta, kHorizon),
                deconv_oracle(f, g, delta, kHorizon))
          << "trial " << trial << " delta " << delta << " f=" << f.describe()
          << " g=" << g.describe();
    }
  }
}

TEST(MinPlusOracle, ConvAgreesWithPjdCurves) {
  // The production callers convolve PJD-derived curves; spot-check those too
  // (small periods keep the brute force over integer lambda affordable).
  const PJDUpperCurve upper(PJD{10, 4, 0});
  const PJDLowerCurve lower(PJD{10, 4, 0});
  for (TimeNs delta = 0; delta <= 60; ++delta) {
    ASSERT_EQ(minplus_conv_at(upper, lower, delta), conv_oracle(upper, lower, delta))
        << "delta " << delta;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModelSweep, SizingLaws,
    ::testing::Values(
        ModelCase{PJD::from_ms(30, 2, 30), PJD::from_ms(30, 30, 30)},    // MJPEG
        ModelCase{PJD::from_ms(6.3, 0.1, 6.3), PJD::from_ms(6.3, 12.6, 6.3)},  // ADPCM
        ModelCase{PJD::from_ms(30, 1, 30), PJD::from_ms(30, 20, 30)},    // H.264
        ModelCase{PJD::from_ms(10, 0, 10), PJD::from_ms(10, 5, 10)},
        ModelCase{PJD::from_ms(8, 4, 8), PJD::from_ms(8, 24, 8)},
        ModelCase{PJD::from_ms(100, 10, 100), PJD::from_ms(100, 150, 100)},
        ModelCase{PJD::from_ms(1, 0.2, 1), PJD::from_ms(1, 2, 1)}));

}  // namespace
}  // namespace sccft::rtc
