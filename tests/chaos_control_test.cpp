// Control-plane chaos tests: storms that attack the protection machinery
// itself (supervisor hangs, TMR counter flips, a wedged flight recorder)
// must be free when the watchdog + scrubber defenses are armed, and each
// planted storm must demonstrably fail its oracle when exactly the defense
// that guards it is disabled. Also covers the extended storm taxonomy and
// the artifact round-trip of the defense configuration.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "chaos/artifact.hpp"
#include "chaos/oracle.hpp"
#include "chaos/runner.hpp"
#include "chaos/storm.hpp"
#include "ft/fault_plan.hpp"

namespace sccft::chaos {
namespace {

ControlPlaneOptions defended() {
  ControlPlaneOptions cp;
  cp.enabled = true;
  return cp;
}

std::vector<Violation> run_plan(std::vector<ft::FaultSpec> faults,
                                const ControlPlaneOptions& cp) {
  StormPlan plan;
  plan.seed = 7;
  plan.run_length = rtc::from_ms(2000.0);
  plan.faults = std::move(faults);
  RunOptions options;
  options.control_plane = cp;
  const RunObservation golden = run_golden(plan.seed, plan.run_length);
  const RunObservation obs = run_storm(plan, options);
  return check_invariants(plan, obs, golden);
}

bool has_code(const std::vector<Violation>& violations, ViolationCode code) {
  return std::any_of(violations.begin(), violations.end(),
                     [&](const Violation& v) { return v.code == code; });
}

std::string codes_of(const std::vector<Violation>& violations) {
  std::string out;
  for (const Violation& v : violations) {
    out += std::string(to_string(v.code)) + "(" + v.detail + ") ";
  }
  return out;
}

// A supervisor hang nothing in software ever clears (duration 0).
ft::FaultSpec permanent_hang() {
  ft::FaultSpec spec;
  spec.kind = ft::FaultKind::kSupervisorHang;
  spec.at = rtc::from_ms(600.0);
  spec.duration = 0;
  spec.tile = 3;
  return spec;
}

ft::FaultSpec wedged_ring() {
  ft::FaultSpec spec;
  spec.kind = ft::FaultKind::kTraceSinkStuck;
  spec.at = rtc::from_ms(500.0);
  spec.duration = rtc::from_ms(600.0);
  return spec;
}

// Flips pinned to the selector's S1 capacity word — quiescent, so without
// the scrubber the corruption accumulates until the TMR vote collapses and
// the stall rule convicts an innocent replica. Seed chosen empirically so
// the accumulated copy-0 XOR undershoots the live space watermark.
ft::FaultSpec pinned_counter_flips() {
  ft::FaultSpec spec;
  spec.kind = ft::FaultKind::kCounterCorruption;
  spec.at = rtc::from_ms(500.0);
  spec.duration = rtc::from_ms(1200.0);
  spec.burst_on_mean = rtc::from_ms(20.0);
  spec.burst_off_mean = 3;  // global scrub word 2 = selector S1 capacity
  spec.seed = 4;
  return spec;
}

// --- supervisor hang vs. the watchdog -------------------------------------

TEST(ControlPlane, PermanentHangIsClearedByTheWatchdog) {
  const std::vector<Violation> violations = run_plan({permanent_hang()}, defended());
  EXPECT_TRUE(violations.empty()) << codes_of(violations);
}

TEST(ControlPlane, PermanentHangWithoutTheWatchdogGoesSilentForever) {
  ControlPlaneOptions cp = defended();
  cp.watchdog = false;
  const std::vector<Violation> violations = run_plan({permanent_hang()}, cp);
  EXPECT_TRUE(has_code(violations, ViolationCode::kSilentSupervisor))
      << codes_of(violations);
}

// --- wedged flight recorder vs. the scrubber ------------------------------

TEST(ControlPlane, WedgedRingIsResyncedByTheScrubber) {
  const std::vector<Violation> violations = run_plan({wedged_ring()}, defended());
  EXPECT_TRUE(violations.empty()) << codes_of(violations);
}

TEST(ControlPlane, WedgedRingWithoutTheScrubberBreaksSpineConsistency) {
  ControlPlaneOptions cp = defended();
  cp.scrubber = false;
  const std::vector<Violation> violations = run_plan({wedged_ring()}, cp);
  EXPECT_TRUE(has_code(violations, ViolationCode::kSpineInconsistent))
      << codes_of(violations);
}

// --- counter corruption vs. the scrubber ----------------------------------

TEST(ControlPlane, PinnedCounterFlipsAreScrubbedBeforeTheyAccumulate) {
  const std::vector<Violation> violations =
      run_plan({pinned_counter_flips()}, defended());
  EXPECT_TRUE(violations.empty()) << codes_of(violations);
}

TEST(ControlPlane, PinnedCounterFlipsWithoutTheScrubberConvictAnInnocent) {
  ControlPlaneOptions cp = defended();
  cp.scrubber = false;
  const std::vector<Violation> violations = run_plan({pinned_counter_flips()}, cp);
  EXPECT_TRUE(has_code(violations, ViolationCode::kUnjustifiedConviction))
      << codes_of(violations);
}

// --- watchdog reset racing a reintegration --------------------------------

TEST(ControlPlane, SupervisorHangDuringRecoveryIsRepairedWithoutLoss) {
  // A real data-path fault convicts R1; the supervisor then hangs while the
  // restart machinery is in flight (the storm generator's adversarial
  // template 5). The watchdog reset must re-drive the swallowed restart and
  // the run must end with every oracle green — including no-loss, since a
  // silence fault plus a control-plane fault is still a lossless plan.
  ft::FaultSpec silence;
  silence.kind = ft::FaultKind::kPermanentSilence;
  silence.replica = ft::ReplicaIndex::kReplica1;
  silence.at = rtc::from_ms(500.0);
  ft::FaultSpec hang = permanent_hang();
  hang.at = rtc::from_ms(530.0);
  const std::vector<Violation> violations = run_plan({silence, hang}, defended());
  EXPECT_TRUE(violations.empty()) << codes_of(violations);
}

// --- storm taxonomy --------------------------------------------------------

TEST(ControlPlane, GeneratorEmitsControlPlaneFaultsOnlyWhenEnabled) {
  StormConfig off;
  const StormGenerator vanilla{off};
  StormConfig on;
  on.control_plane = true;
  const StormGenerator extended{on};
  int with_control_plane = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    for (const ft::FaultSpec& spec : vanilla.generate(seed).faults) {
      EXPECT_FALSE(ft::is_control_plane(spec.kind)) << "seed " << seed;
    }
    const StormPlan plan = extended.generate(seed);
    if (std::any_of(plan.faults.begin(), plan.faults.end(),
                    [](const ft::FaultSpec& s) {
                      return ft::is_control_plane(s.kind);
                    })) {
      ++with_control_plane;
    }
  }
  // Every extended storm carries at least one control-plane fault.
  EXPECT_EQ(with_control_plane, 30);
}

TEST(ControlPlane, LosslessnessIgnoresControlPlaneFaults) {
  // Control-plane faults have no data-path victim: a plan made only of them
  // still promises gap-free delivery, which is exactly what makes the
  // defenses-on soak a meaningful acceptance gate.
  EXPECT_TRUE(plan_is_lossless(
      {permanent_hang(), wedged_ring(), pinned_counter_flips()}));
  ft::FaultSpec silence;
  silence.kind = ft::FaultKind::kPermanentSilence;
  silence.replica = ft::ReplicaIndex::kReplica2;
  silence.at = rtc::from_ms(400.0);
  EXPECT_TRUE(plan_is_lossless({silence, permanent_hang()}));
}

// --- artifact round-trip ---------------------------------------------------

TEST(ControlPlane, ArtifactRoundTripsTheDefenseConfiguration) {
  FailureArtifact artifact;
  artifact.seed = 9;
  artifact.run_length = rtc::from_ms(2000.0);
  artifact.control_plane.enabled = true;
  artifact.control_plane.watchdog = false;
  artifact.control_plane.scrubber = true;
  artifact.control_plane.heartbeat_period = rtc::from_ms(10.0);
  artifact.control_plane.watchdog_deadline = rtc::from_ms(80.0);
  artifact.control_plane.scrub_period = rtc::from_ms(2.0);
  artifact.violations.push_back(
      Violation{ViolationCode::kSilentSupervisor, "no heartbeat"});
  artifact.plan.push_back(permanent_hang());

  const FailureArtifact parsed = parse_artifact(serialize(artifact));
  EXPECT_TRUE(parsed.control_plane.enabled);
  EXPECT_FALSE(parsed.control_plane.watchdog);
  EXPECT_TRUE(parsed.control_plane.scrubber);
  EXPECT_EQ(parsed.control_plane.heartbeat_period, rtc::from_ms(10.0));
  EXPECT_EQ(parsed.control_plane.watchdog_deadline, rtc::from_ms(80.0));
  EXPECT_EQ(parsed.control_plane.scrub_period, rtc::from_ms(2.0));
  ASSERT_EQ(parsed.plan.size(), 1u);
  EXPECT_EQ(parsed.plan[0].kind, ft::FaultKind::kSupervisorHang);
  EXPECT_EQ(parsed.plan[0].tile, 3);
  EXPECT_EQ(serialize(parsed), serialize(artifact));
}

TEST(ControlPlane, LegacyArtifactsWithoutTheDirectiveDefaultToDefensesOff) {
  const std::string legacy =
      "sccft-chaos-artifact v1\n"
      "seed 3\n"
      "run-length-ns 2000000000\n"
      "planted none\n"
      "violation stalled-stream nothing was ever delivered\n"
      "plan-begin\n"
      "plan-end\n"
      "flight-begin\n"
      "flight-end\n"
      "registry-begin\n"
      "registry-end\n";
  const FailureArtifact parsed = parse_artifact(legacy);
  EXPECT_FALSE(parsed.control_plane.enabled);
  EXPECT_TRUE(parsed.control_plane.watchdog);
  EXPECT_TRUE(parsed.control_plane.scrubber);
}

}  // namespace
}  // namespace sccft::chaos
