// Online-RTC subsystem tests (rtc/online): the CurveEstimator's window
// records against exact hand counts and a brute-force oracle, the soundness
// property (empirical staircases never leave the analytic PJD envelope of
// the stream that produced them), the ConformanceChecker's breach semantics,
// and the OnlineDimensioner's measured-vs-designed margins with rtc/sizing
// as the oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "apps/adpcm/app.hpp"
#include "kpn/timing.hpp"
#include "rtc/online/conformance.hpp"
#include "rtc/online/dimensioner.hpp"
#include "rtc/online/estimator.hpp"
#include "rtc/pjd.hpp"
#include "rtc/sizing.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace sccft::rtc::online {
namespace {

TEST(CurveEstimator, RejectsBrokenConfigs) {
  EXPECT_THROW(CurveEstimator({.base_delta = 0, .levels = 4}),
               util::ContractViolation);
  EXPECT_THROW(CurveEstimator({.base_delta = 100, .levels = 0}),
               util::ContractViolation);
  EXPECT_THROW(CurveEstimator({.base_delta = 100, .levels = 64}),
               util::ContractViolation);
}

TEST(CurveEstimator, RejectsTimeGoingBackwards) {
  CurveEstimator estimator({.base_delta = 100, .levels = 2});
  estimator.add_event(500);
  EXPECT_THROW(estimator.add_event(499), util::ContractViolation);
  EXPECT_THROW(estimator.advance_to(499), util::ContractViolation);
}

TEST(CurveEstimator, PeriodicStreamRecordsExactCounts) {
  // Events at exactly 0, 100, ..., 1000 on the lattice {100, 200, 400}.
  CurveEstimator estimator({.base_delta = 100, .levels = 3});
  for (TimeNs t = 0; t <= 1000; t += 100) estimator.add_event(t);

  // (t-100, t] holds only the event at t; (t-200, t] two; (t-400, t] four.
  EXPECT_EQ(estimator.upper_record(0), 1);
  EXPECT_EQ(estimator.upper_record(1), 2);
  EXPECT_EQ(estimator.upper_record(2), 4);

  // [t-delta, t) windows: the event at t is excluded, the one at t-delta
  // included, so the counts match the upper records once the window fits in
  // the observed span.
  EXPECT_TRUE(estimator.lower_valid(0));
  EXPECT_EQ(estimator.lower_record(0), 1);
  EXPECT_EQ(estimator.lower_record(1), 2);
  EXPECT_EQ(estimator.lower_record(2), 4);

  // Silence drags the minima down to zero, level by level.
  estimator.advance_to(1000 + 400);
  EXPECT_EQ(estimator.lower_record(0), 0);
  EXPECT_EQ(estimator.lower_record(1), 0);
  EXPECT_EQ(estimator.lower_record(2), 1);  // [1000, 1400) still holds the last event
  estimator.advance_to(1000 + 1400);
  EXPECT_EQ(estimator.lower_record(2), 0);
  // The maxima never decay.
  EXPECT_EQ(estimator.upper_record(0), 1);
  EXPECT_EQ(estimator.upper_record(2), 4);
}

TEST(CurveEstimator, LowerWindowsBeforeFirstEventDoNotCount) {
  // Stream starts late: windows reaching before the first event are not real
  // windows of the stream's span and must not record zeros.
  CurveEstimator estimator({.base_delta = 100, .levels = 2});
  estimator.advance_to(1000);
  EXPECT_FALSE(estimator.lower_valid(0));
  estimator.add_event(1000);
  estimator.add_event(1100);
  // [1050, 1150) would hold 1, but 1050 >= first_event only from t=1100 on.
  EXPECT_TRUE(estimator.lower_valid(0));
  EXPECT_EQ(estimator.lower_record(0), 1);
  EXPECT_FALSE(estimator.lower_valid(1));  // no full 200-window inside the span yet
  estimator.add_event(1200);
  EXPECT_TRUE(estimator.lower_valid(1));
  EXPECT_EQ(estimator.lower_record(1), 2);
}

TEST(CurveEstimator, BufferIsBoundedByTheLargestWindow) {
  CurveEstimator estimator({.base_delta = 100, .levels = 3});  // max window 400
  for (TimeNs t = 0; t < 100'000; t += 50) estimator.add_event(t);
  EXPECT_EQ(estimator.events(), 2000u);
  // At 50 ns spacing a 400 ns window holds <= 9 events; eviction must keep
  // the deque near that, not near the full stream.
  EXPECT_LE(estimator.buffered_events(), 16u);
}

TEST(CurveEstimator, SnapshotsAreDeterministic) {
  const auto feed = [](CurveEstimator& estimator) {
    util::Xoshiro256 rng(99);
    TimeNs t = 0;
    for (int k = 0; k < 500; ++k) {
      const auto gap = static_cast<TimeNs>(rng.uniform_int(0, 250));
      if (k % 7 == 0) estimator.advance_to(t + gap / 2);  // off-event poll
      t += gap;
      estimator.add_event(t);
    }
    return t;
  };
  CurveEstimator a({.base_delta = 128, .levels = 5});
  CurveEstimator b({.base_delta = 128, .levels = 5});
  const TimeNs end_a = feed(a);
  const TimeNs end_b = feed(b);
  ASSERT_EQ(end_a, end_b);
  const auto snap_a = a.snapshot(end_a + 1000);
  const auto snap_b = b.snapshot(end_b + 1000);
  EXPECT_EQ(snap_a, snap_b);
  // Snapshotting is idempotent at a fixed instant.
  EXPECT_EQ(snap_a, a.snapshot(end_a + 1000));
}

// Brute-force oracle: replay a random stream of events and polls, then
// recompute every record definition directly from the full timestamp list.
//   upper[j] = max over event instants t of #{events in (t - Delta_j, t]}
//              evaluated with the events present at that moment (for ties at
//              the same instant, the last event sees them all — the max is
//              unaffected),
//   lower[j] = min over observation instants t with t - Delta_j >= first
//              event of #{events in [t - Delta_j, t)} — later events can
//              never fall into that window (time is nondecreasing), so the
//              final event list gives the same counts.
TEST(CurveEstimator, MatchesBruteForceOracleOnRandomStreams) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    util::Xoshiro256 rng(seed);
    const LatticeConfig lattice{.base_delta = 64, .levels = 5};
    CurveEstimator estimator(lattice);

    std::vector<TimeNs> events;       // every event timestamp, in order
    std::vector<TimeNs> observations; // every instant observe() ran at
    TimeNs t = 0;
    for (int step = 0; step < 400; ++step) {
      t += static_cast<TimeNs>(rng.uniform_int(0, 200));  // 0 => same-instant event
      if (rng.uniform_int(0, 9) < 7) {
        estimator.add_event(t);
        events.push_back(t);
        observations.push_back(t);
      } else {
        estimator.advance_to(t);
        observations.push_back(t);
      }
    }
    ASSERT_FALSE(events.empty());
    const TimeNs first = events.front();

    for (int level = 0; level < estimator.levels(); ++level) {
      const TimeNs delta = estimator.delta(level);

      Tokens expected_upper = 0;
      for (std::size_t i = 0; i < events.size(); ++i) {
        Tokens count = 0;
        for (std::size_t j = 0; j <= i; ++j) {
          if (events[j] > events[i] - delta) ++count;
        }
        expected_upper = std::max(expected_upper, count);
      }
      EXPECT_EQ(estimator.upper_record(level), expected_upper)
          << "seed " << seed << " level " << level;

      bool expected_valid = false;
      Tokens expected_lower = 0;
      for (const TimeNs at : observations) {
        const TimeNs lo = at - delta;
        if (lo < first) continue;
        Tokens count = 0;
        for (const TimeNs e : events) {
          if (e >= lo && e < at) ++count;
        }
        if (!expected_valid || count < expected_lower) {
          expected_valid = true;
          expected_lower = count;
        }
      }
      EXPECT_EQ(estimator.lower_valid(level), expected_valid)
          << "seed " << seed << " level " << level;
      if (expected_valid) {
        EXPECT_EQ(estimator.lower_record(level), expected_lower)
            << "seed " << seed << " level " << level;
      }
    }
  }
}

// The subsystem's soundness property: a stream generated by the framework's
// own TimingShaper from a PJD model never drives the empirical staircases
// outside the model's analytic envelope, at any lattice point — this is what
// makes zero false positives a theorem rather than a tuning outcome.
TEST(CurveEstimator, EmpiricalCurvesStayInsideTheAnalyticEnvelope) {
  const PJD models[] = {PJD::from_ms(10, 0, 0), PJD::from_ms(10, 20, 0),
                        PJD::from_ms(6.3, 12.6, 6.3), PJD::from_ms(30, 5, 30)};
  for (const PJD& model : models) {
    const PJDUpperCurve analytic_upper(model);
    const PJDLowerCurve analytic_lower(model);
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      util::Xoshiro256 rng(seed);
      kpn::TimingShaper shaper(model, 0, rng);
      // An off-period lattice so windows straddle emissions unaligned.
      CurveEstimator estimator(
          {.base_delta = model.period / 2 + 1, .levels = 7});
      TimeNs last = 0;
      for (int k = 0; k < 300; ++k) {
        const TimeNs event = shaper.next_emission(last);
        shaper.commit(event);
        // Poll between events too: minima must be witnessed off-event.
        if (k % 3 == 0 && event > last) {
          estimator.advance_to(last + (event - last) / 2);
        }
        estimator.add_event(event);
        last = event;
      }
      estimator.advance_to(last);
      for (int level = 0; level < estimator.levels(); ++level) {
        const TimeNs delta = estimator.delta(level);
        EXPECT_LE(estimator.upper_record(level), analytic_upper.value_at(delta))
            << model.to_string() << " seed " << seed << " delta " << delta;
        if (estimator.lower_valid(level)) {
          EXPECT_GE(estimator.lower_record(level), analytic_lower.value_at(delta))
              << model.to_string() << " seed " << seed << " delta " << delta;
        }
      }
    }
  }
}

TEST(ConformanceChecker, ConformantStreamNeverTrips) {
  const PJD model = PJD::from_ms(10, 20, 0);
  const auto curves = ArrivalCurvePair::from_pjd(model);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    util::Xoshiro256 rng(seed);
    kpn::TimingShaper shaper(model, 0, rng);
    CurveEstimator estimator({.base_delta = model.period, .levels = 6});
    ConformanceChecker checker(estimator, curves.lower.get(), curves.upper.get());
    TimeNs last = 0;
    for (int k = 0; k < 400; ++k) {
      const TimeNs event = shaper.next_emission(last);
      shaper.commit(event);
      estimator.add_event(event);
      EXPECT_FALSE(checker.check(estimator).has_value()) << "at event " << k;
      last = event;
    }
    EXPECT_FALSE(checker.first().has_value());
    EXPECT_EQ(checker.upper_violations(), 0u);
    EXPECT_EQ(checker.lower_violations(), 0u);
    EXPECT_EQ(checker.checks(), 400u);
  }
}

TEST(ConformanceChecker, BurstBeyondTheDesignUpperIsAnUpperBreach) {
  const PJD model = PJD::from_ms(10, 0, 0);  // strict: eta+(10ms) = 1
  const auto curves = ArrivalCurvePair::from_pjd(model);
  CurveEstimator estimator({.base_delta = model.period, .levels = 4});
  ConformanceChecker checker(estimator, curves.lower.get(), curves.upper.get());

  TimeNs t = 0;
  for (int k = 0; k < 10; ++k, t += model.period) {
    estimator.add_event(t);
    ASSERT_FALSE(checker.check(estimator).has_value());
  }
  // Two extra events within one period: the (t - P, t] window now holds 3.
  estimator.add_event(t);
  estimator.add_event(t);
  const auto violation = checker.check(estimator);
  ASSERT_TRUE(violation.has_value());
  EXPECT_TRUE(violation->upper);
  EXPECT_EQ(violation->level, 0);
  EXPECT_EQ(violation->bound, checker.upper_bound(0));
  EXPECT_GT(violation->observed, violation->bound);
  EXPECT_EQ(violation->at, t);
  EXPECT_EQ(checker.first(), violation);
  EXPECT_GE(checker.upper_violations(), 1u);
}

TEST(ConformanceChecker, StarvationIsALowerBreachCountedOncePerDepth) {
  const PJD model = PJD::from_ms(10, 0, 0);  // eta-(20ms) = 2
  const auto curves = ArrivalCurvePair::from_pjd(model);
  CurveEstimator estimator({.base_delta = model.period, .levels = 4});
  ConformanceChecker checker(estimator, curves.lower.get(), curves.upper.get());

  TimeNs t = 0;
  for (int k = 0; k < 30; ++k, t += model.period) {
    estimator.add_event(t);
    ASSERT_FALSE(checker.check(estimator).has_value());
  }
  // Silence: by 3 periods past the last event some [t-Delta, t) window has
  // starved below the design lower curve.
  estimator.advance_to(t + 3 * model.period);
  const auto violation = checker.check(estimator);
  ASSERT_TRUE(violation.has_value());
  EXPECT_FALSE(violation->upper);
  EXPECT_LT(violation->observed, violation->bound);
  const auto count_after_first = checker.lower_violations();

  // The running minimum is sticky; re-checking the same state must not
  // re-count the same starvation.
  EXPECT_FALSE(checker.check(estimator).has_value());
  EXPECT_EQ(checker.lower_violations(), count_after_first);

  // Deepening starvation counts again.
  estimator.advance_to(t + 6 * model.period);
  EXPECT_TRUE(checker.check(estimator).has_value());
  EXPECT_GT(checker.lower_violations(), count_after_first);
}

// Dimensioner: streams shaped by the application's own design models must
// yield measured requirements inside the designed ones — rtc/sizing is the
// oracle on both sides of the comparison.
TEST(OnlineDimensioner, MeasuredRequirementsStayWithinTheDesign) {
  const auto app = apps::adpcm::make_application();
  const auto model = app.timing.to_model();
  const SizingReport designed =
      analyze_duplicated_network(model, app.timing.default_horizon());

  const auto measure = [](const PJD& pjd, TimeNs base_delta,
                          std::uint64_t seed) {
    util::Xoshiro256 rng(seed);
    kpn::TimingShaper shaper(pjd, 0, rng);
    CurveEstimator estimator({.base_delta = base_delta, .levels = 7});
    TimeNs last = 0;
    for (int k = 0; k < 400; ++k) {
      const TimeNs event = shaper.next_emission(last);
      shaper.commit(event);
      estimator.add_event(event);
      last = event;
    }
    return estimator.snapshot(last);
  };

  const TimeNs base = app.timing.producer.period;
  const auto producer = measure(app.timing.producer, base, 3);
  const auto r1 = measure(app.timing.replica1_out, base, 4);
  const auto r2 = measure(app.timing.replica2_out, base, 5);

  const OnlineMargins margins = redimension(producer, r1, r2, model, designed);
  EXPECT_GT(margins.horizon, 0);
  EXPECT_EQ(margins.designed_fifo1, designed.replicator_capacity1);
  EXPECT_EQ(margins.designed_divergence, designed.selector_threshold);

  ASSERT_TRUE(margins.measured_fifo1.has_value());
  ASSERT_TRUE(margins.measured_fifo2.has_value());
  EXPECT_GE(*margins.measured_fifo1, 1);
  EXPECT_LE(*margins.measured_fifo1, designed.replicator_capacity1);
  EXPECT_LE(*margins.measured_fifo2, designed.replicator_capacity2);

  ASSERT_TRUE(margins.measured_divergence.has_value());
  EXPECT_GE(*margins.measured_divergence, 1);
  EXPECT_LE(*margins.measured_divergence, designed.selector_threshold);

  // The measured Eq. (8) bound is certified on a coarser lattice than the
  // analytic curves, so it may only be later (more conservative), never
  // earlier than the designed bound.
  ASSERT_TRUE(margins.measured_latency.has_value());
  EXPECT_GE(*margins.measured_latency, designed.selector_latency_bound);
}

TEST(OnlineDimensioner, EmptySnapshotsReportNoMeasurements) {
  const auto app = apps::adpcm::make_application();
  const auto model = app.timing.to_model();
  const SizingReport designed =
      analyze_duplicated_network(model, app.timing.default_horizon());
  const EmpiricalCurveSnapshot empty;
  const OnlineMargins margins = redimension(empty, empty, empty, model, designed);
  EXPECT_EQ(margins.horizon, 0);
  EXPECT_FALSE(margins.measured_fifo1.has_value());
  EXPECT_FALSE(margins.measured_divergence.has_value());
  EXPECT_FALSE(margins.measured_latency.has_value());
  EXPECT_EQ(margins.designed_fifo1, designed.replicator_capacity1);
}

}  // namespace
}  // namespace sccft::rtc::online
