// Scrubbing tests: Tmr voting and self-healing writes, channel control-word
// corruption + majority repair through the Scrubbable interface, and the
// periodic Scrubber (repair metrics, kScrubRepair events, flight-ring
// resync of a wedged sink).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "ft/framework.hpp"
#include "ft/scrub.hpp"
#include "kpn/network.hpp"
#include "sim/simulator.hpp"
#include "trace/bus.hpp"
#include "trace/sinks.hpp"

namespace sccft::ft {
namespace {

// --- Tmr<T> word semantics -------------------------------------------------

TEST(Tmr, SingleCopyCorruptionIsOutvoted) {
  Tmr<std::int64_t> word = 42;
  word.corrupt(1, 0x10);
  EXPECT_EQ(word.vote(), 42);  // 2-of-3 majority holds
  word.corrupt(1, 0x10);       // XOR is its own inverse
  EXPECT_EQ(word.vote(), 42);
}

TEST(Tmr, WritesRefreshAllCopies) {
  Tmr<std::int64_t> word = 5;
  word.corrupt(2, 0xFF);
  word = 7;  // read-modify-write self-heals
  word.corrupt(0, 0);  // no-op corruption; all copies must already agree
  EXPECT_EQ(word.vote(), 7);
  EXPECT_EQ(word.scrub().repairs, 0);
}

TEST(Tmr, ScrubRepairsTheMinorityCopy) {
  Tmr<std::int64_t> word = 42;
  word.corrupt(2, 0x4);
  const ScrubWordResult result = word.scrub();
  EXPECT_EQ(result.repairs, 1);
  EXPECT_FALSE(result.unrepairable);
  EXPECT_EQ(word.vote(), 42);
  EXPECT_EQ(word.scrub().repairs, 0);  // idempotent once repaired
}

TEST(Tmr, AllDistinctCopiesFallBackToCopyZeroAndReportUnrepairable) {
  Tmr<std::int64_t> word = 42;
  word.corrupt(1, 0x1);
  word.corrupt(2, 0x2);
  EXPECT_EQ(word.vote(), 42);  // copy 0 untouched; fallback is still correct
  const ScrubWordResult result = word.scrub();
  EXPECT_TRUE(result.unrepairable);
  EXPECT_EQ(result.repairs, 2);
  EXPECT_EQ(word.vote(), 42);

  // The dangerous variant: copy 0 itself corrupted, the other two distinct.
  Tmr<std::int64_t> bad = 42;
  bad.corrupt(0, 0x8);
  bad.corrupt(1, 0x2);
  EXPECT_EQ(bad.vote(), 42 ^ 0x8);  // fallback adopts the corrupt copy 0
  EXPECT_TRUE(bad.scrub().unrepairable);
}

TEST(Tmr, CompoundOpsVoteThenRewrite) {
  Tmr<std::int64_t> word = 10;
  word.corrupt(1, 0xFF00);
  word += 5;  // votes (10), adds, rewrites all three copies
  EXPECT_EQ(word.vote(), 15);
  EXPECT_EQ(word.scrub().repairs, 0);
  ++word;
  word -= 6;
  EXPECT_EQ(word.vote(), 10);
}

// --- channel Scrubbable surfaces ------------------------------------------

struct ChannelRig {
  sim::Simulator simulator;
  kpn::Network net{simulator};
  FaultTolerantHarness harness;

  ChannelRig() : harness(net, make_config()) {}

  static FaultTolerantHarness::Config make_config() {
    AppTimingSpec timing;
    timing.producer = rtc::PJD::from_ms(10, 1, 10);
    timing.replica1_in = timing.replica1_out = rtc::PJD::from_ms(10, 2, 10);
    timing.replica2_in = timing.replica2_out = rtc::PJD::from_ms(10, 6, 10);
    timing.consumer = rtc::PJD::from_ms(10, 1, 10);
    return FaultTolerantHarness::Config{.timing = timing};
  }
};

TEST(ChannelScrub, WordCountsMatchTheDocumentedLayout) {
  ChannelRig rig;
  // Replicator: one virtual-fill word per side. Selector: six words per side
  // plus the enqueue frontier and the divergence threshold.
  EXPECT_EQ(rig.harness.replicator().control_word_count(), 2);
  EXPECT_EQ(rig.harness.selector().control_word_count(), 14);
  EXPECT_FALSE(rig.harness.replicator().scrub_name().empty());
  EXPECT_FALSE(rig.harness.selector().scrub_name().empty());
}

TEST(ChannelScrub, CorruptedControlWordIsMajorityRepaired) {
  ChannelRig rig;
  for (int word = 0; word < rig.harness.selector().control_word_count(); ++word) {
    rig.harness.selector().corrupt_control_word(word, 1, 0x20);
  }
  const ScrubReport report = rig.harness.selector().scrub_control_state();
  EXPECT_EQ(report.words, 14);
  EXPECT_EQ(report.repairs, 14);
  EXPECT_EQ(report.unrepairable, 0);
  // A second scrub finds a fully consistent channel.
  const ScrubReport second = rig.harness.selector().scrub_control_state();
  EXPECT_EQ(second.repairs, 0);
}

// --- the periodic Scrubber -------------------------------------------------

struct ScrubEventLog : trace::Sink {
  std::vector<trace::Event> events;
  void on_event(const trace::Event& event) override { events.push_back(event); }
};

TEST(Scrubber, PeriodicallyRepairsRegisteredTargetsAndCounts) {
  ChannelRig rig;
  ScrubEventLog log;
  rig.simulator.trace().subscribe(&log, trace::bit(trace::EventKind::kScrubRepair));
  Scrubber scrubber(rig.simulator, {.period = rtc::from_ms(5.0)});
  scrubber.add_target(&rig.harness.replicator());
  scrubber.add_target(&rig.harness.selector());
  scrubber.start();

  rig.simulator.schedule_at(rtc::from_ms(12.0), [&] {
    rig.harness.selector().corrupt_control_word(3, 2, 0x40);
  });
  rig.simulator.run_until(rtc::from_ms(30.0));

  // Repaired on the first tick after the flip (15 ms), and never again.
  EXPECT_EQ(scrubber.total_repairs(), 1u);
  EXPECT_EQ(rig.simulator.trace().metrics().counter("scrub.repairs"), 1u);
  EXPECT_EQ(rig.simulator.trace().metrics().counter("scrub.unrepairable"), 0u);
  ASSERT_EQ(log.events.size(), 1u);
  EXPECT_EQ(log.events[0].time, rtc::from_ms(15.0));
  EXPECT_EQ(log.events[0].a, 1);  // target index 1 = the selector
  EXPECT_EQ(log.events[0].b, 1);  // one copy rewritten
  rig.simulator.trace().unsubscribe(&log);
}

TEST(Scrubber, ResyncsAWedgedFlightRing) {
  sim::Simulator simulator;
  trace::RingBufferSink ring(64);
  const std::uint32_t mask = trace::bit(trace::EventKind::kHeartbeat);
  simulator.trace().subscribe(&ring, mask);
  // The independent tally the audit cross-checks: count the same events.
  std::uint64_t tally = 0;
  struct Tally : trace::Sink {
    std::uint64_t* count;
    void on_event(const trace::Event&) override { ++*count; }
  } counter;
  counter.count = &tally;
  simulator.trace().subscribe(&counter, mask);

  Scrubber scrubber(simulator, {.period = rtc::from_ms(5.0)});
  scrubber.watch_flight_ring(&ring, [&] { return tally; });
  scrubber.start();

  const trace::SubjectId subject = simulator.trace().intern("beacon");
  for (int i = 1; i <= 20; ++i) {
    simulator.schedule_at(i * rtc::from_ms(2.0), [&, subject] {
      simulator.trace().emit(trace::EventKind::kHeartbeat, subject,
                             simulator.now());
    });
  }
  simulator.schedule_at(rtc::from_ms(7.0), [&] { ring.set_wedged(true); });
  simulator.run_until(rtc::from_ms(50.0));

  // The wedge lost at most one 5 ms window of events before the audit
  // force-resynced the ring; by the end the totals agree again.
  EXPECT_FALSE(ring.wedged());
  EXPECT_GE(scrubber.ring_resyncs(), 1u);
  EXPECT_EQ(ring.total_events(), tally);
  EXPECT_EQ(simulator.trace().metrics().counter("scrub.flight_ring_resyncs"),
            scrubber.ring_resyncs());

  simulator.trace().unsubscribe(&ring);
  simulator.trace().unsubscribe(&counter);
}

}  // namespace
}  // namespace sccft::ft
