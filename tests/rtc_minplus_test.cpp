// Min-plus algebra tests: known identities and cross-checks against dense
// brute-force evaluation.
#include <gtest/gtest.h>

#include "rtc/minplus.hpp"
#include "rtc/pjd.hpp"

namespace sccft::rtc {
namespace {

constexpr TimeNs kHorizon = 2'000;

/// Dense brute-force min-plus convolution for the oracle.
Tokens brute_conv(const Curve& f, const Curve& g, TimeNs delta) {
  Tokens best = std::numeric_limits<Tokens>::max();
  for (TimeNs lambda = 0; lambda <= delta; ++lambda) {
    best = std::min(best, f.value_at(lambda) + g.value_at(delta - lambda));
  }
  return best;
}

Tokens brute_deconv(const Curve& f, const Curve& g, TimeNs delta, TimeNs horizon) {
  Tokens best = std::numeric_limits<Tokens>::min();
  for (TimeNs lambda = 0; lambda <= horizon; ++lambda) {
    best = std::max(best, f.value_at(delta + lambda) - g.value_at(lambda));
  }
  return best;
}

StaircaseCurve staircase_a() {
  return StaircaseCurve(0, {{10, 1}, {30, 2}, {55, 1}}, 0, 0, 0, "a");
}
StaircaseCurve staircase_b() {
  return StaircaseCurve(1, {{20, 1}, {40, 1}}, 0, 0, 0, "b");
}

TEST(MinPlusConv, MatchesBruteForce) {
  const auto a = staircase_a();
  const auto b = staircase_b();
  for (TimeNs d = 0; d <= 100; d += 7) {
    EXPECT_EQ(minplus_conv_at(a, b, d), brute_conv(a, b, d)) << "delta " << d;
  }
}

TEST(MinPlusConv, ZeroIsAnnihilatorLike) {
  // conv with the zero curve: (f (x) 0)(d) = min over splits of f(l) + 0 =
  // min(f(0), ..., 0 + f-part) = 0 + min... = 0 if f(0)=0.
  const auto a = staircase_a();
  ZeroCurve zero;
  for (TimeNs d = 0; d <= 100; d += 10) {
    EXPECT_EQ(minplus_conv_at(a, zero, d), 0);
  }
}

TEST(MinPlusConv, Commutative) {
  const auto a = staircase_a();
  const auto b = staircase_b();
  for (TimeNs d = 0; d <= 120; d += 11) {
    EXPECT_EQ(minplus_conv_at(a, b, d), minplus_conv_at(b, a, d));
  }
}

TEST(MinPlusConv, MaterializedCurveMatchesPointQueries) {
  const auto a = staircase_a();
  const auto b = staircase_b();
  const auto conv = minplus_conv(a, b, 200);
  for (TimeNs d = 0; d <= 200; d += 3) {
    EXPECT_EQ(conv.value_at(d), minplus_conv_at(a, b, d)) << "delta " << d;
  }
}

TEST(MinPlusDeconv, MatchesBruteForce) {
  const auto a = staircase_a();
  const auto b = staircase_b();
  for (TimeNs d = 0; d <= 60; d += 5) {
    EXPECT_EQ(minplus_deconv_at(a, b, d, 100), brute_deconv(a, b, d, 100))
        << "delta " << d;
  }
}

TEST(MinPlusDeconv, DeconvBoundsBacklog) {
  // (alpha^u (/) beta^l)(0) is the classic backlog bound.
  PJDUpperCurve arrivals(PJD{100, 50, 0});
  PJDLowerCurve service(PJD{100, 20, 0});
  const auto backlog = minplus_deconv_at(arrivals, service, 0, kHorizon);
  Tokens dense = 0;
  for (TimeNs t = 0; t <= kHorizon; ++t) {
    dense = std::max(dense, arrivals.value_at(t) - service.value_at(t));
  }
  EXPECT_EQ(backlog, dense);
}

TEST(MinPlusConv, PjdUpperIsSubadditiveUnderSelfConv) {
  // For a (sub-additive) upper curve, f (x) f = f on the tested range.
  PJDUpperCurve upper(PJD{100, 30, 0});
  for (TimeNs d = 0; d <= 1'500; d += 50) {
    EXPECT_EQ(minplus_conv_at(upper, upper, d), upper.value_at(d)) << "delta " << d;
  }
}

TEST(Pointwise, MinMaxSum) {
  const auto a = staircase_a();
  const auto b = staircase_b();
  const auto mn = pointwise_min(a, b, 100);
  const auto mx = pointwise_max(a, b, 100);
  const auto sm = pointwise_sum(a, b, 100);
  for (TimeNs d = 0; d <= 100; d += 4) {
    EXPECT_EQ(mn.value_at(d), std::min(a.value_at(d), b.value_at(d)));
    EXPECT_EQ(mx.value_at(d), std::max(a.value_at(d), b.value_at(d)));
    EXPECT_EQ(sm.value_at(d), a.value_at(d) + b.value_at(d));
  }
}

TEST(Pointwise, WorksOnPjdCurves) {
  PJDUpperCurve u1(PJD{40, 10, 0}), u2(PJD{60, 5, 0});
  const auto mn = pointwise_min(u1, u2, 1'000);
  for (TimeNs d = 0; d <= 1'000; d += 13) {
    EXPECT_EQ(mn.value_at(d), std::min(u1.value_at(d), u2.value_at(d)));
  }
}

}  // namespace
}  // namespace sccft::rtc
