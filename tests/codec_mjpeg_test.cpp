// JPEG-style codec tests: DCT correctness, quantization, slicing, round-trip
// quality, and determinism.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/common/generators.hpp"
#include "apps/mjpeg/jpeg_codec.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace sccft::apps::mjpeg {
namespace {

double psnr(const Frame& a, const Frame& b) {
  SCCFT_ASSERT(a.pixels.size() == b.pixels.size());
  double mse = 0.0;
  for (std::size_t i = 0; i < a.pixels.size(); ++i) {
    const double d = static_cast<double>(a.pixels[i]) - static_cast<double>(b.pixels[i]);
    mse += d * d;
  }
  mse /= static_cast<double>(a.pixels.size());
  if (mse == 0.0) return 99.0;
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

TEST(Dct, FlatBlockHasOnlyDc) {
  std::uint8_t pixels[64];
  std::fill_n(pixels, 64, 200);
  double coeffs[64];
  fdct8x8(pixels, 8, coeffs);
  // DC = 8 * (200 - 128) = 576; all AC ~ 0.
  EXPECT_NEAR(coeffs[0], 8.0 * (200.0 - 128.0), 1e-6);
  for (int i = 1; i < 64; ++i) EXPECT_NEAR(coeffs[i], 0.0, 1e-9) << "AC " << i;
}

TEST(Dct, RoundTripLossless) {
  util::Xoshiro256 rng(1);
  std::uint8_t pixels[64];
  std::uint8_t back[64];
  for (int trial = 0; trial < 20; ++trial) {
    for (auto& p : pixels) p = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    double coeffs[64];
    fdct8x8(pixels, 8, coeffs);
    idct8x8(coeffs, back, 8);
    for (int i = 0; i < 64; ++i) {
      EXPECT_NEAR(static_cast<int>(back[i]), static_cast<int>(pixels[i]), 1)
          << "trial " << trial << " pixel " << i;
    }
  }
}

TEST(Dct, ParsevalEnergyPreserved) {
  util::Xoshiro256 rng(2);
  std::uint8_t pixels[64];
  for (auto& p : pixels) p = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  double coeffs[64];
  fdct8x8(pixels, 8, coeffs);
  double spatial = 0.0, spectral = 0.0;
  for (int i = 0; i < 64; ++i) {
    const double c = static_cast<double>(pixels[i]) - 128.0;
    spatial += c * c;
    spectral += coeffs[i] * coeffs[i];
  }
  EXPECT_NEAR(spectral, spatial, spatial * 1e-9);
}

TEST(Zigzag, IsAPermutationStartingAtDc) {
  const auto& order = zigzag_order();
  std::array<bool, 64> seen{};
  for (int pos : order) {
    ASSERT_GE(pos, 0);
    ASSERT_LT(pos, 64);
    EXPECT_FALSE(seen[static_cast<std::size_t>(pos)]);
    seen[static_cast<std::size_t>(pos)] = true;
  }
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);   // (0,1)
  EXPECT_EQ(order[2], 8);   // (1,0)
  EXPECT_EQ(order[63], 63);
}

TEST(QuantTable, QualityScalesMonotonically) {
  const auto q10 = quant_table(10);
  const auto q50 = quant_table(50);
  const auto q95 = quant_table(95);
  for (int i = 0; i < 64; ++i) {
    EXPECT_GE(q10[static_cast<std::size_t>(i)], q50[static_cast<std::size_t>(i)]);
    EXPECT_GE(q50[static_cast<std::size_t>(i)], q95[static_cast<std::size_t>(i)]);
    EXPECT_GE(q95[static_cast<std::size_t>(i)], 1);
  }
}

TEST(Codec, RoundTripQualityReasonable) {
  const Frame frame = generate_frame(320, 240, 3, 2014);
  const auto encoded = encode_frame(frame, 75);
  const Frame decoded = decode_frame(encoded);
  EXPECT_EQ(decoded.width, 320);
  EXPECT_EQ(decoded.height, 240);
  EXPECT_GT(psnr(frame, decoded), 30.0);
}

TEST(Codec, CompressionRatioRealistic) {
  // The paper's encoded frames are ~10 KB for 320x240 (76.8 KB raw).
  const Frame frame = generate_frame(320, 240, 7, 2014);
  const auto encoded = encode_frame(frame, 75);
  EXPECT_LT(encoded.size(), 40'000u);
  EXPECT_GT(encoded.size(), 2'000u);
}

TEST(Codec, HigherQualityLargerAndBetter) {
  const Frame frame = generate_frame(320, 240, 5, 2014);
  const auto low = encode_frame(frame, 25);
  const auto high = encode_frame(frame, 95);
  EXPECT_LT(low.size(), high.size());
  EXPECT_LT(psnr(frame, decode_frame(low)), psnr(frame, decode_frame(high)));
}

TEST(Codec, Deterministic) {
  const Frame frame = generate_frame(320, 240, 11, 2014);
  EXPECT_EQ(encode_frame(frame, 75), encode_frame(frame, 75));
}

TEST(Slices, SplitAndMergeMatchesFullDecode) {
  const Frame frame = generate_frame(320, 240, 9, 2014);
  const auto encoded = encode_frame(frame, 75);
  const auto slices = split_encoded(encoded);
  const Frame top = decode_slice(slices.top);
  const Frame bottom = decode_slice(slices.bottom);
  EXPECT_EQ(top.height, 120);
  EXPECT_EQ(bottom.height, 120);
  const Frame merged = merge_slices(top, bottom);
  const Frame direct = decode_frame(encoded);
  EXPECT_EQ(merged.pixels, direct.pixels);
}

TEST(Slices, IndependentlyDecodable) {
  // Decoding only the bottom slice must not depend on the top slice's bits.
  const Frame frame = generate_frame(64, 32, 1, 99);
  const auto slices = split_encoded(encode_frame(frame, 80));
  const Frame bottom = decode_slice(slices.bottom);
  EXPECT_EQ(bottom.width, 64);
  EXPECT_EQ(bottom.height, 16);
}

TEST(Codec, RejectsBadDimensions) {
  Frame bad{10, 16, std::vector<std::uint8_t>(160)};
  EXPECT_THROW((void)encode_frame(bad, 75), util::ContractViolation);
  Frame odd_height{16, 24, std::vector<std::uint8_t>(384)};
  EXPECT_THROW((void)encode_frame(odd_height, 75), util::ContractViolation);
}

TEST(Codec, RejectsCorruptHeader) {
  std::vector<std::uint8_t> garbage{'X', 'Y', 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_THROW((void)decode_frame(garbage), util::ContractViolation);
}

TEST(Entropy, BothModesDecodeIdentically) {
  // The two entropy backends carry the same quantized coefficients; decoding
  // either bitstream must give pixel-identical frames.
  const Frame frame = generate_frame(320, 240, 6, 2014);
  const auto huffman = encode_frame(frame, 75, EntropyMode::kHuffman);
  const auto golomb = encode_frame(frame, 75, EntropyMode::kExpGolomb);
  EXPECT_EQ(decode_frame(huffman).pixels, decode_frame(golomb).pixels);
}

TEST(Entropy, HuffmanCompressesBetter) {
  // Optimized per-slice Huffman tables beat the fixed Exp-Golomb codes — the
  // reason real JPEG uses them.
  for (std::uint64_t index : {1u, 5u, 9u}) {
    const Frame frame = generate_frame(320, 240, index, 2014);
    const auto huffman = encode_frame(frame, 75, EntropyMode::kHuffman);
    const auto golomb = encode_frame(frame, 75, EntropyMode::kExpGolomb);
    EXPECT_LT(huffman.size(), golomb.size()) << "frame " << index;
  }
}

TEST(Entropy, MixedModeSlicesRejectedGracefully) {
  // A Huffman slice fed to a decoder is fine; garbage magic is not.
  const Frame frame = generate_frame(64, 32, 2, 7);
  auto slices = split_encoded(encode_frame(frame, 80, EntropyMode::kHuffman));
  EXPECT_NO_THROW((void)decode_slice(slices.top));
  slices.top[0] = 'X';
  EXPECT_THROW((void)decode_slice(slices.top), util::ContractViolation);
}

TEST(Entropy, HuffmanDeterministic) {
  const Frame frame = generate_frame(320, 240, 13, 2014);
  EXPECT_EQ(encode_frame(frame, 75, EntropyMode::kHuffman),
            encode_frame(frame, 75, EntropyMode::kHuffman));
}

TEST(Generators, FramesDeterministicAndDistinct) {
  const Frame a1 = generate_frame(320, 240, 4, 2014);
  const Frame a2 = generate_frame(320, 240, 4, 2014);
  const Frame b = generate_frame(320, 240, 5, 2014);
  EXPECT_EQ(a1.pixels, a2.pixels);
  EXPECT_NE(a1.pixels, b.pixels);
}

}  // namespace
}  // namespace sccft::apps::mjpeg
