// Trace-calibration tests: exact trace curves and conservative PJD fits.
#include <gtest/gtest.h>

#include "kpn/timing.hpp"
#include "rtc/calibration.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace sccft::rtc {
namespace {

std::vector<TimeNs> periodic_trace(TimeNs period, int count, TimeNs jitter = 0,
                                   std::uint64_t seed = 1) {
  util::Xoshiro256 rng(seed);
  std::vector<TimeNs> arrivals;
  for (int k = 0; k < count; ++k) {
    const TimeNs phi = jitter > 0 ? rng.uniform_int(0, jitter) : 0;
    arrivals.push_back(static_cast<TimeNs>(k) * period + phi);
  }
  std::sort(arrivals.begin(), arrivals.end());
  return arrivals;
}

TEST(TraceCurves, StrictlyPeriodicExactBounds) {
  const auto trace = periodic_trace(100, 50);
  const auto upper = trace_upper_curve(trace);
  const auto lower = trace_lower_curve(trace);
  // Upper: k events in a half-open window need length > (k-1)*100.
  EXPECT_EQ(upper.value_at(1), 1);
  EXPECT_EQ(upper.value_at(100), 1);
  EXPECT_EQ(upper.value_at(101), 2);
  EXPECT_EQ(upper.value_at(301), 4);
  // Lower: a window of length 100+ must contain at least 1 event.
  EXPECT_EQ(lower.value_at(99), 0);
  EXPECT_GE(lower.value_at(201), 1);
}

TEST(TraceCurves, BoundTheirOwnTrace) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto trace = periodic_trace(100, 60, 30, seed);
    const auto upper = trace_upper_curve(trace);
    const auto lower = trace_lower_curve(trace);
    EXPECT_TRUE(curves_bound_trace(upper, lower, trace)) << "seed " << seed;
  }
}

TEST(TraceCurves, UpperMonotoneAndTight) {
  const auto trace = periodic_trace(50, 40, 20, 3);
  const auto upper = trace_upper_curve(trace);
  Tokens prev = 0;
  for (TimeNs t = 0; t <= 2'000; t += 10) {
    EXPECT_GE(upper.value_at(t), prev);
    prev = upper.value_at(t);
  }
  // Tight at the top: the whole trace fits in its span + 1.
  const TimeNs span = trace.back() - trace.front();
  EXPECT_EQ(upper.value_at(span + 1), static_cast<Tokens>(trace.size()));
}

TEST(FitPjd, RecoversPeriodOfCleanTrace) {
  const auto trace = periodic_trace(1'000, 100);
  const PJD fit = fit_pjd(trace);
  EXPECT_EQ(fit.period, 1'000);
  EXPECT_EQ(fit.jitter, 0);
}

TEST(FitPjd, JitterCoversDeviations) {
  const auto trace = periodic_trace(1'000, 100, 300, 7);
  const PJD fit = fit_pjd(trace);
  EXPECT_NEAR(static_cast<double>(fit.period), 1'000.0, 10.0);
  EXPECT_GT(fit.jitter, 0);
  EXPECT_LE(fit.jitter, 400);
}

TEST(FitPjd, FittedCurvesBoundTheTrace) {
  for (std::uint64_t seed = 11; seed <= 15; ++seed) {
    const auto trace = periodic_trace(500, 80, 150, seed);
    const auto pair = calibrate(trace);
    EXPECT_TRUE(curves_bound_trace(*pair.upper, *pair.lower, trace)) << "seed " << seed;
  }
}

TEST(FitPjd, ShaperOutputRecalibratesConsistently) {
  // End-to-end: shape a stream from a PJD model, calibrate the trace, and
  // check the fitted model's period matches and jitter is not larger than
  // the original (the shaper draws within [0, J]).
  const PJD model = PJD::from_ms(10, 3, 0);
  util::Xoshiro256 rng(5);
  kpn::TimingShaper shaper(model, 0, rng);
  std::vector<TimeNs> trace;
  for (int k = 0; k < 300; ++k) {
    const TimeNs t = shaper.next_emission(0);
    shaper.commit(t);
    trace.push_back(t);
  }
  const PJD fit = fit_pjd(trace);
  EXPECT_NEAR(static_cast<double>(fit.period), static_cast<double>(model.period),
              static_cast<double>(model.period) * 0.02);
  EXPECT_LE(fit.jitter, 2 * model.jitter);
}

TEST(Calibration, TooShortTraceRejected) {
  const std::vector<TimeNs> one{42};
  EXPECT_THROW((void)trace_upper_curve(one), util::ContractViolation);
  EXPECT_THROW((void)fit_pjd(one), util::ContractViolation);
}

TEST(Calibration, UnsortedTraceRejected) {
  const std::vector<TimeNs> bad{10, 5, 20};
  EXPECT_THROW((void)fit_pjd(bad), util::ContractViolation);
}

}  // namespace
}  // namespace sccft::rtc
