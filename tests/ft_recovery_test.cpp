// Replica recovery / reintegration tests: a killed replica is restarted,
// rejoins the stream with exact duplicate-pair alignment, and the repaired
// system then tolerates a fault in the OTHER replica.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "ft/framework.hpp"
#include "ft/recovery.hpp"
#include "ft/supervisor.hpp"
#include "kpn/network.hpp"
#include "kpn/timing.hpp"
#include "trace/bus.hpp"

namespace sccft::ft {
namespace {

struct Rig {
  sim::Simulator simulator;
  kpn::Network net{simulator};
  ft::AppTimingSpec timing;
  std::optional<FaultTolerantHarness> harness;
  std::vector<kpn::Process*> replicas;
  std::vector<std::uint64_t> consumed;
  bool gap = false;
  bool duplicate = false;

  Rig() {
    timing.producer = rtc::PJD::from_ms(10, 1, 10);
    timing.replica1_in = timing.replica1_out = rtc::PJD::from_ms(10, 2, 10);
    timing.replica2_in = timing.replica2_out = rtc::PJD::from_ms(10, 6, 10);
    timing.consumer = rtc::PJD::from_ms(10, 1, 10);
    harness.emplace(net, FaultTolerantHarness::Config{.timing = timing});

    net.add_process("producer", scc::CoreId{0}, 1,
                    [this](kpn::ProcessContext& ctx) -> sim::Task {
                      kpn::TimingShaper shaper(timing.producer, 0, ctx.rng());
                      for (std::uint64_t k = 0;; ++k) {
                        const rtc::TimeNs t = shaper.next_emission(ctx.now());
                        if (t > ctx.now()) co_await ctx.delay(t - ctx.now());
                        std::vector<std::uint8_t> payload(4, static_cast<std::uint8_t>(k));
                        co_await kpn::write(harness->replicator(),
                                            kpn::Token(std::move(payload), k, ctx.now()));
                        shaper.commit(ctx.now());
                      }
                    });

    auto replica_body = [this](ReplicaIndex which, rtc::PJD model) {
      return [this, which, model](kpn::ProcessContext& ctx) -> sim::Task {
        kpn::TimingShaper emit(model, ctx.now(), ctx.rng());
        while (true) {
          SCCFT_FAULT_GATE(ctx);
          kpn::Token token =
              co_await kpn::read(harness->replicator().read_interface(which));
          SCCFT_FAULT_GATE(ctx);
          const rtc::TimeNs t = emit.next_emission(ctx.now());
          if (t > ctx.now()) co_await ctx.compute(t - ctx.now());
          SCCFT_FAULT_GATE(ctx);
          co_await kpn::write(harness->selector().write_interface(which), token);
          emit.commit(ctx.now());
        }
      };
    };
    replicas.push_back(&net.add_process(
        "r1", scc::CoreId{2}, 2, replica_body(ReplicaIndex::kReplica1, timing.replica1_out)));
    replicas.push_back(&net.add_process(
        "r2", scc::CoreId{4}, 3, replica_body(ReplicaIndex::kReplica2, timing.replica2_out)));

    net.add_process("consumer", scc::CoreId{6}, 4,
                    [this](kpn::ProcessContext& ctx) -> sim::Task {
                      kpn::TimingShaper shaper(timing.consumer, 0, ctx.rng());
                      std::uint64_t expected = 0;
                      while (true) {
                        const rtc::TimeNs t = shaper.next_emission(ctx.now());
                        if (t > ctx.now()) co_await ctx.delay(t - ctx.now());
                        kpn::Token token = co_await kpn::read(harness->selector());
                        shaper.commit(ctx.now());
                        if (token.seq() > expected) gap = true;
                        if (token.seq() < expected) duplicate = true;
                        expected = token.seq() + 1;
                        consumed.push_back(token.seq());
                      }
                    });
  }

  void kill(ReplicaIndex r, rtc::TimeNs at) {
    simulator.schedule_at(at, [this, r] {
      replicas[static_cast<std::size_t>(index_of(r))]->context().fault().silenced = true;
      harness->replicator().freeze_reader(r);
      harness->selector().freeze_writer(r);
    });
  }

  void recover(ReplicaIndex r, rtc::TimeNs at) {
    simulator.schedule_at(at, [this, r] {
      ReplicaAssets assets{r, {replicas[static_cast<std::size_t>(index_of(r))]}, {}};
      recover_replica(harness->replicator(), harness->selector(), assets);
    });
  }

  /// Transient outage: silence + freeze at `at`, self-clearing silence and
  /// channel unfreeze at `at + duration` (no restart involved).
  void pause(ReplicaIndex r, rtc::TimeNs at, rtc::TimeNs duration) {
    simulator.schedule_at(at, [this, r, until = at + duration] {
      auto& fault = replicas[static_cast<std::size_t>(index_of(r))]->context().fault();
      fault.silenced = true;
      fault.silence_until = until;
      harness->replicator().freeze_reader(r);
      harness->selector().freeze_writer(r);
    });
    simulator.schedule_at(at + duration, [this, r] {
      replicas[static_cast<std::size_t>(index_of(r))]->context().fault().clear_silence();
      harness->replicator().unfreeze_reader(r);
      harness->selector().unfreeze_writer(r);
    });
  }
};

TEST(Recovery, ReplicaRejoinsWithoutCorruptingStream) {
  Rig rig;
  rig.kill(ReplicaIndex::kReplica1, rtc::from_ms(300.0));
  rig.recover(ReplicaIndex::kReplica1, rtc::from_ms(800.0));
  rig.net.run_until(rtc::from_sec(2.0));

  EXPECT_FALSE(rig.gap) << "token lost across fault or rejoin";
  EXPECT_FALSE(rig.duplicate) << "duplicate delivered after rejoin";
  EXPECT_GT(rig.consumed.size(), 180u);
  // The rejoined replica is healthy again and participating.
  EXPECT_FALSE(rig.harness->selector().fault(ReplicaIndex::kReplica1));
  EXPECT_FALSE(rig.harness->replicator().fault(ReplicaIndex::kReplica1));
  EXPECT_GT(rig.harness->selector().tokens_received(ReplicaIndex::kReplica1), 0u);
}

TEST(Recovery, RepairedSystemToleratesSecondFault) {
  Rig rig;
  // Fault 1 in replica 1; recover it; fault 2 in replica 2.
  rig.kill(ReplicaIndex::kReplica1, rtc::from_ms(300.0));
  rig.recover(ReplicaIndex::kReplica1, rtc::from_ms(800.0));
  rig.kill(ReplicaIndex::kReplica2, rtc::from_ms(1300.0));
  rig.net.run_until(rtc::from_sec(2.5));

  EXPECT_FALSE(rig.gap);
  EXPECT_FALSE(rig.duplicate);
  EXPECT_GT(rig.consumed.size(), 230u);  // stream survived both faults
  // Replica 2's fault was detected after replica 1 rejoined.
  EXPECT_TRUE(rig.harness->selector().fault(ReplicaIndex::kReplica2) ||
              rig.harness->replicator().fault(ReplicaIndex::kReplica2));
  EXPECT_FALSE(rig.harness->selector().fault(ReplicaIndex::kReplica1));
}

TEST(Recovery, SameReplicaFaultsRecoversAndFaultsAgain) {
  Rig rig;
  // The same replica dies twice; each recovery must fully re-arm it — stale
  // state from the first fault/repair cycle must not poison the second.
  rig.kill(ReplicaIndex::kReplica1, rtc::from_ms(300.0));
  rig.recover(ReplicaIndex::kReplica1, rtc::from_ms(600.0));
  rig.kill(ReplicaIndex::kReplica1, rtc::from_ms(1000.0));
  rig.recover(ReplicaIndex::kReplica1, rtc::from_ms(1300.0));
  rig.net.run_until(rtc::from_sec(2.0));

  EXPECT_FALSE(rig.gap) << "token lost across one of the two fault cycles";
  EXPECT_FALSE(rig.duplicate);
  EXPECT_GT(rig.consumed.size(), 180u);
  // After the second recovery the replica participates again.
  EXPECT_FALSE(rig.harness->selector().fault(ReplicaIndex::kReplica1));
  EXPECT_FALSE(rig.harness->replicator().fault(ReplicaIndex::kReplica1));
  EXPECT_FALSE(rig.replicas[0]->context().fault().faulty());
}

TEST(Recovery, RecoveryWhilePeerIsMidBurstKeepsTheStreamIntact) {
  Rig rig;
  // Replica 1 dies and is recovered at t=800ms — exactly while replica 2
  // sits in a short transient outage (a burst of an intermittent fault).
  // The rejoin must not rely on the peer being live at that instant, and
  // nothing may deadlock even though both replicas are briefly down.
  rig.kill(ReplicaIndex::kReplica1, rtc::from_ms(300.0));
  rig.pause(ReplicaIndex::kReplica2, rtc::from_ms(790.0), rtc::from_ms(25.0));
  rig.recover(ReplicaIndex::kReplica1, rtc::from_ms(800.0));
  rig.net.run_until(rtc::from_sec(2.0));

  EXPECT_FALSE(rig.gap);
  EXPECT_FALSE(rig.duplicate);
  EXPECT_GT(rig.consumed.size(), 150u);
  // Both replicas ended up live: replica 1 rejoined, replica 2's burst ended.
  EXPECT_FALSE(rig.harness->selector().fault(ReplicaIndex::kReplica1));
  EXPECT_FALSE(rig.replicas[1]->context().fault().silenced);
  EXPECT_GT(rig.harness->selector().tokens_received(ReplicaIndex::kReplica1), 0u);
}

TEST(Recovery, ReintegrationClearsDetectionState) {
  sim::Simulator simulator;
  kpn::Network net(simulator);
  ft::AppTimingSpec timing;
  timing.producer = rtc::PJD::from_ms(10, 1, 10);
  timing.replica1_in = timing.replica1_out = rtc::PJD::from_ms(10, 2, 10);
  timing.replica2_in = timing.replica2_out = rtc::PJD::from_ms(10, 6, 10);
  timing.consumer = rtc::PJD::from_ms(10, 1, 10);
  FaultTolerantHarness harness(net, {.timing = timing});

  // Force a replicator overflow on queue 1.
  for (std::uint64_t k = 0; k < 5; ++k) {
    std::vector<std::uint8_t> payload{1};
    ASSERT_TRUE(harness.replicator().try_write(kpn::Token(std::move(payload), k, 0)));
    (void)harness.replicator().read_interface(ReplicaIndex::kReplica2).try_read();
  }
  ASSERT_TRUE(harness.replicator().fault(ReplicaIndex::kReplica1));

  harness.replicator().reintegrate(ReplicaIndex::kReplica1);
  EXPECT_FALSE(harness.replicator().fault(ReplicaIndex::kReplica1));
  EXPECT_FALSE(harness.replicator().detection(ReplicaIndex::kReplica1).has_value());
  EXPECT_EQ(harness.replicator().fill(ReplicaIndex::kReplica1), 0);
  // New writes flow into the reopened queue again.
  std::vector<std::uint8_t> payload{2};
  ASSERT_TRUE(harness.replicator().try_write(kpn::Token(std::move(payload), 99, 0)));
  EXPECT_EQ(harness.replicator().fill(ReplicaIndex::kReplica1), 1);
}

TEST(Recovery, SelectorResyncAlignsPairs) {
  sim::Simulator simulator;
  SelectorChannel selector(simulator, "sel",
                           {.capacity1 = 4,
                            .capacity2 = 4,
                            .initial1 = 2,
                            .initial2 = 2,
                            .divergence_threshold = 50,
                            .enable_stall_rule = false});
  auto& w1 = selector.write_interface(ReplicaIndex::kReplica1);
  auto& w2 = selector.write_interface(ReplicaIndex::kReplica2);
  auto make = [](std::uint64_t seq) {
    return kpn::Token(std::vector<std::uint8_t>{static_cast<std::uint8_t>(seq)}, seq, 0);
  };
  // Both deliver pairs 0..2; then replica 1 goes down.
  for (std::uint64_t k = 0; k < 3; ++k) {
    ASSERT_TRUE(w1.try_write(make(k)));
    ASSERT_TRUE(w2.try_write(make(k)));
    (void)selector.try_read();
  }
  selector.freeze_writer(ReplicaIndex::kReplica1);
  // Replica 2 alone delivers 3..6.
  for (std::uint64_t k = 3; k < 7; ++k) {
    ASSERT_TRUE(w2.try_write(make(k)));
    (void)selector.try_read();
  }
  // Reintegrate replica 1; it resumes at seq 7 (skipping 3..6).
  selector.reintegrate(ReplicaIndex::kReplica1);
  ASSERT_TRUE(w1.try_write(make(7)));  // FIRST of pair 7: must enqueue
  auto fresh = selector.try_read();
  ASSERT_TRUE(fresh.has_value());
  EXPECT_EQ(fresh->seq(), 7u);
  // Replica 2's 7 is now the late duplicate: dropped.
  const auto fill_before = selector.fill();
  ASSERT_TRUE(w2.try_write(make(7)));
  EXPECT_EQ(selector.fill(), fill_before);
}

/// Collects every event of the subscribed mask (test-side flight recorder).
struct EventLog final : trace::Sink {
  std::vector<trace::Event> events;
  void on_event(const trace::Event& event) override { events.push_back(event); }
};

TEST(Recovery, RecoverReplicaEmitsReintegrateOnBothChannels) {
  Rig rig;
  EventLog log;
  rig.simulator.trace().subscribe(&log, trace::bit(trace::EventKind::kReintegrate));
  rig.kill(ReplicaIndex::kReplica1, rtc::from_ms(300.0));
  rig.recover(ReplicaIndex::kReplica1, rtc::from_ms(800.0));
  rig.net.run_until(rtc::from_sec(1.2));
  rig.simulator.trace().unsubscribe(&log);

  // recover_replica leaves a typed repair boundary on BOTH channels, so a
  // flight-recorder dump brackets the re-admission instant.
  ASSERT_EQ(log.events.size(), 2u);
  for (const trace::Event& event : log.events) {
    EXPECT_EQ(event.kind, trace::EventKind::kReintegrate);
    EXPECT_EQ(event.time, rtc::from_ms(800.0));
    EXPECT_EQ(event.a, index_of(ReplicaIndex::kReplica1));
  }
  // One from the replicator, one from the selector: distinct subjects.
  EXPECT_NE(log.events[0].subject, log.events[1].subject);
}

TEST(Recovery, DoubleFaultDuringReintegrationWindowStaysLiveAndOrdered) {
  Rig rig;
  std::array<ReplicaAssets, 2> assets{
      ReplicaAssets{ReplicaIndex::kReplica1, {rig.replicas[0]}, {}},
      ReplicaAssets{ReplicaIndex::kReplica2, {rig.replicas[1]}, {}}};
  Supervisor supervisor(rig.simulator, rig.harness->replicator(),
                        rig.harness->selector(), assets,
                        {.restart_budget = 3,
                         .initial_backoff = rtc::from_ms(20.0)});

  // Replica 1 dies; the supervisor convicts and restarts it. The moment that
  // restart fires (kRestart on the bus), replica 2 is killed — i.e. the
  // second fault lands deterministically inside replica 1's reintegration
  // window, while its selector side is still awaiting its sequence-number
  // resync. Coupling the injection to the event (not a tuned constant) makes
  // the adversarial interleaving hold for any timing model.
  struct KillOnRestart final : trace::Sink {
    Rig* rig = nullptr;
    bool fired = false;
    void on_event(const trace::Event& event) override {
      if (fired || event.a != index_of(ReplicaIndex::kReplica1)) return;
      fired = true;
      const rtc::TimeNs at = event.time + rtc::from_ms(2.0);
      rig->kill(ReplicaIndex::kReplica2, at);
    }
  };
  KillOnRestart second_fault;
  second_fault.rig = &rig;
  rig.simulator.trace().subscribe(&second_fault,
                                  trace::bit(trace::EventKind::kRestart));

  rig.kill(ReplicaIndex::kReplica1, rtc::from_ms(300.0));
  rig.net.run_until(rtc::from_sec(2.4));
  rig.simulator.trace().unsubscribe(&second_fault);

  // Tokens replica 2 had read but not yet delivered when it died are lost to
  // both replicas (replica 1's queue was cleared while it was down) — that
  // gap is inherent to the double fault, and conviction of replica 2 lifts
  // replica 1's rejoin frontier-hold exactly so the stream keeps flowing.
  // What must NEVER happen, gap or not: duplicates or sequence regressions.
  EXPECT_TRUE(second_fault.fired) << "replica 1 was never restarted";
  EXPECT_FALSE(rig.duplicate);
  EXPECT_GT(rig.consumed.size(), 150u) << "stream stalled across the double fault";
  // Both replicas were repaired: one restart each, both healthy at the end.
  EXPECT_EQ(supervisor.health(ReplicaIndex::kReplica1), ReplicaHealth::kHealthy);
  EXPECT_EQ(supervisor.health(ReplicaIndex::kReplica2), ReplicaHealth::kHealthy);
  EXPECT_EQ(supervisor.report(ReplicaIndex::kReplica1).restarts, 1);
  EXPECT_EQ(supervisor.report(ReplicaIndex::kReplica2).restarts, 1);
  // And the repaired pair is really participating again.
  EXPECT_FALSE(rig.harness->selector().fault(ReplicaIndex::kReplica1));
  EXPECT_FALSE(rig.harness->selector().fault(ReplicaIndex::kReplica2));
}

}  // namespace
}  // namespace sccft::ft
