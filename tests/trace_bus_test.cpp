// Trace-spine unit tests: bus subscription/masking/dispatch order, subject
// interning, the pluggable sinks (ring buffer, binary, CSV, counter, VCD),
// the metrics registry's merge semantics, and the flight recorder's
// contract-violation dump.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "trace/bus.hpp"
#include "trace/metrics.hpp"
#include "trace/sinks.hpp"
#include "util/assert.hpp"

namespace sccft::trace {
namespace {

/// Records (kind, sink tag) pairs so dispatch order is observable.
class TaggedSink final : public Sink {
 public:
  TaggedSink(int tag, std::vector<std::pair<int, EventKind>>& log)
      : tag_(tag), log_(log) {}
  void on_event(const Event& event) override { log_.emplace_back(tag_, event.kind); }

 private:
  int tag_;
  std::vector<std::pair<int, EventKind>>& log_;
};

TEST(TraceBus, InternAssignsStableInsertionOrderedIds) {
  TraceBus bus;
  EXPECT_EQ(bus.subject_name(0), "");  // id 0 is the empty subject
  const SubjectId a = bus.intern("alpha");
  const SubjectId b = bus.intern("beta");
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(bus.intern("alpha"), a);  // idempotent
  EXPECT_EQ(bus.subject_name(a), "alpha");
  EXPECT_EQ(bus.subject_name(b), "beta");
  EXPECT_EQ(bus.subject_count(), 3u);
}

TEST(TraceBus, EmitReachesOnlySinksWhoseMaskMatches) {
  TraceBus bus;
  std::vector<std::pair<int, EventKind>> log;
  TaggedSink enq_only(1, log);
  TaggedSink deq_only(2, log);
  bus.subscribe(&enq_only, bit(EventKind::kEnqueue));
  bus.subscribe(&deq_only, bit(EventKind::kDequeue));

  EXPECT_TRUE(bus.wants(EventKind::kEnqueue));
  EXPECT_TRUE(bus.wants(EventKind::kDequeue));
  EXPECT_FALSE(bus.wants(EventKind::kDetection));

  bus.emit(EventKind::kEnqueue, 0, 10);
  bus.emit(EventKind::kDequeue, 0, 20);
  bus.emit(EventKind::kDetection, 0, 30);  // nobody listens: not dispatched
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], std::make_pair(1, EventKind::kEnqueue));
  EXPECT_EQ(log[1], std::make_pair(2, EventKind::kDequeue));

  bus.unsubscribe(&enq_only);
  EXPECT_FALSE(bus.wants(EventKind::kEnqueue));
  bus.emit(EventKind::kEnqueue, 0, 40);
  EXPECT_EQ(log.size(), 2u);  // unchanged
  bus.unsubscribe(&deq_only);
}

TEST(TraceBus, DispatchRunsSinksInSubscriptionOrder) {
  TraceBus bus;
  std::vector<std::pair<int, EventKind>> log;
  TaggedSink first(1, log);
  TaggedSink second(2, log);
  bus.subscribe(&first, kAllEvents);
  bus.subscribe(&second, kAllEvents);
  bus.emit(EventKind::kDetection, 0, 1);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].first, 1);
  EXPECT_EQ(log[1].first, 2);

  // Re-subscribing updates the mask in place without duplicating the sink.
  bus.subscribe(&first, bit(EventKind::kEnqueue));
  log.clear();
  bus.emit(EventKind::kDetection, 0, 2);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].first, 2);
  bus.unsubscribe(&first);
  bus.unsubscribe(&second);
}

TEST(RingBufferSink, KeepsTheLastCapacityEventsAndCountsDrops) {
  RingBufferSink ring(4);
  for (std::int64_t i = 0; i < 10; ++i) {
    ring.on_event(Event{i, EventKind::kEnqueue, 0, i, 0, 0});
  }
  EXPECT_EQ(ring.total_events(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().a, 6);  // oldest retained
  EXPECT_EQ(events.back().a, 9);   // newest
}

TEST(BinarySink, SerializesFixedWidthDeterministically) {
  BinarySink one, two;
  for (BinarySink* sink : {&one, &two}) {
    sink->on_event(Event{1'000, EventKind::kEnqueue, 3, 42, 7, 0});
    sink->on_event(Event{2'000, EventKind::kDetection, 4, 0, 2, -1});
  }
  EXPECT_EQ(one.event_count(), 2u);
  EXPECT_EQ(one.data().size(), 2u * 37u);  // 8 + 1 + 4 + 3*8 bytes per record
  EXPECT_EQ(one.data(), two.data());

  // Little-endian spot check: time 1000 = 0x3E8 in the first two bytes.
  EXPECT_EQ(static_cast<unsigned char>(one.data()[0]), 0xE8);
  EXPECT_EQ(static_cast<unsigned char>(one.data()[1]), 0x03);
}

TEST(CsvSink, RendersRowsWithResolvedSubjectNames) {
  TraceBus bus;
  const SubjectId subject = bus.intern("mjpeg.replicator.R1");
  CsvSink csv(bus);
  bus.subscribe(&csv, kAllEvents);
  bus.emit(EventKind::kEnqueue, subject, 5'000, 17, 2);
  bus.unsubscribe(&csv);

  const std::string rendered = csv.render();
  EXPECT_NE(rendered.find("time_ns,kind,subject,a,b,c"), std::string::npos);
  EXPECT_NE(rendered.find("5000,enqueue,mjpeg.replicator.R1,17,2,0"),
            std::string::npos);
  csv.clear();
  EXPECT_EQ(csv.event_count(), 0u);
}

TEST(CounterSink, CountsEventsPerKindIntoTheRegistry) {
  TraceBus bus;
  CounterSink counters(bus.metrics());
  bus.subscribe(&counters, kAllEvents);
  bus.emit(EventKind::kEnqueue, 0, 1);
  bus.emit(EventKind::kEnqueue, 0, 2);
  bus.emit(EventKind::kDetection, 0, 3);
  bus.unsubscribe(&counters);
  EXPECT_EQ(bus.metrics().counter("trace.events.enqueue"), 2u);
  EXPECT_EQ(bus.metrics().counter("trace.events.detection"), 1u);
  EXPECT_EQ(bus.metrics().counter("trace.events.dequeue"), 0u);
}

TEST(VcdSink, TracksFillAndFaultFlagChanges) {
  TraceBus bus;
  const SubjectId queue = bus.intern("q");
  VcdSink vcd("scope");
  vcd.watch_fill(queue, "fill");
  vcd.watch_fault(0, "fault_R1");
  const std::size_t initial = vcd.change_count();  // the time-0 declarations
  bus.subscribe(&vcd, kAllEvents);
  bus.emit(EventKind::kEnqueue, queue, 100, /*seq=*/0, /*fill=*/1);
  bus.emit(EventKind::kDetection, queue, 200, /*replica=*/0, 0);
  bus.emit(EventKind::kReintegrate, queue, 300, /*replica=*/0);
  bus.unsubscribe(&vcd);
  EXPECT_EQ(vcd.change_count(), initial + 3);
  const std::string rendered = vcd.render();
  EXPECT_NE(rendered.find("fill"), std::string::npos);
  EXPECT_NE(rendered.find("fault_R1"), std::string::npos);
}

TEST(MetricsRegistry, MergeAddsCountersMaxesGaugesAppendsSeries) {
  MetricsRegistry a, b;
  a.add("tokens", 3);
  b.add("tokens", 4);
  a.gauge_max("fill", 2);
  b.gauge_max("fill", 7);
  a.record("lat", 10);
  b.record("lat", 5);
  b.record("lat", 20);

  a.merge(b);
  EXPECT_EQ(a.counter("tokens"), 7u);
  EXPECT_EQ(a.gauge("fill"), 7);
  const Series* lat = a.find_series("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->samples(), (std::vector<std::int64_t>{10, 5, 20}));
  EXPECT_EQ(lat->min(), 5);
  EXPECT_EQ(lat->max(), 20);

  // Rendering is name-sorted, hence byte-stable across identical registries.
  MetricsRegistry c;
  c.add("tokens", 7);
  c.gauge_max("fill", 7);
  for (const std::int64_t v : {10, 5, 20}) c.record("lat", v);
  EXPECT_EQ(a.render_csv(), c.render_csv());
}

TEST(MetricsRegistry, CounterAndSeriesRefsAreStable) {
  MetricsRegistry registry;
  std::uint64_t& tokens = registry.counter_ref("tokens");
  Series& series = registry.series_ref("samples");
  for (int i = 0; i < 100; ++i) registry.add("filler." + std::to_string(i));
  tokens = 5;
  series.add(1);
  EXPECT_EQ(registry.counter("tokens"), 5u);
  ASSERT_NE(registry.find_series("samples"), nullptr);
  EXPECT_EQ(registry.find_series("samples")->count(), 1u);
}

TEST(FlightRecorder, DumpsRetainedEventsOnContractViolation) {
  const std::string path = "/tmp/sccft_flight_recorder_test.csv";
  std::remove(path.c_str());

  TraceBus bus;
  const SubjectId subject = bus.intern("doomed-channel");
  RingBufferSink ring(8);
  bus.subscribe(&ring, kFlightRecorderMask);
  install_flight_recorder(ring, bus, path);

  bus.emit(EventKind::kEnqueue, subject, 100, 1, 1);
  bus.emit(EventKind::kDetection, subject, 200, 0, 2);
  EXPECT_THROW(bus.subject_name(999), util::ContractViolation);

  uninstall_flight_recorder();
  bus.unsubscribe(&ring);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  const std::string dump((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(dump.find("doomed-channel"), std::string::npos);
  EXPECT_NE(dump.find("detection"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sccft::trace
