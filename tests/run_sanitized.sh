#!/usr/bin/env sh
# Configures, builds, and runs the full test suite under a sanitizer:
#   asan (default) — AddressSanitizer + UndefinedBehaviorSanitizer
#                    (the SCCFT_SANITIZE CMake option)
#   tsan           — ThreadSanitizer (the SCCFT_SANITIZE_THREAD option)
#
# The coroutine-based runtime hands coroutine frames across scheduler events;
# the classes of bug that matter most here — a stale wake-up resuming a frame
# a restart already destroyed, a double resume, a container invalidating a
# parked handle — are exactly what ASan/UBSan catch and plain tests may miss.
# The TSan lane targets the OTHER concurrency surface: the worker pool behind
# --jobs (parallel_for_ordered), the per-thread log-capture stacks, and the
# synchronized memoization caches that the fault campaign and chaos soak
# share across workers.
#
# Usage: tests/run_sanitized.sh [build-dir] [asan|tsan]
#   default build-dir: build-sanitize (asan) / build-tsan (tsan)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
mode=asan
build_dir=
for arg in "$@"; do
  case "$arg" in
    asan|tsan) mode=$arg ;;
    *) build_dir=$arg ;;
  esac
done

case "$mode" in
  asan)
    build_dir=${build_dir:-"${repo_root}/build-sanitize"}
    sanitize_flags="-DSCCFT_SANITIZE=ON"
    ;;
  tsan)
    build_dir=${build_dir:-"${repo_root}/build-tsan"}
    sanitize_flags="-DSCCFT_SANITIZE_THREAD=ON"
    ;;
esac

cmake -B "${build_dir}" -S "${repo_root}" ${sanitize_flags}
cmake --build "${build_dir}" -j "$(nproc)"
# -LE bench: the wall-time gates (e.g. micro_overhead's 2% trace-overhead
# budget) are meaningless under sanitizer instrumentation.
ctest --test-dir "${build_dir}" -j "$(nproc)" --output-on-failure -LE bench
# Drive the parallel campaign path (worker pool, per-thread log capture,
# synchronized memoization caches) under the sanitizer: data races on the
# shared caches or the capture stack would surface here, not in the serial
# suite. The chaos soak adds a second, storm-shaped parallel workload over
# the same pool (and exercises the oracle/artifact layers).
"${build_dir}/bench/fault_campaign" --jobs 4 --csv "${build_dir}/fault_campaign_sanitized.csv" > /dev/null
"${build_dir}/bench/chaos_soak" --runs 50 --jobs 4 --csv "${build_dir}/chaos_soak_sanitized.csv" > /dev/null
# Control-plane storms arm the watchdog + scrubber and attack the supervisor
# and channel bookkeeping themselves — the defense paths (watchdog expiry
# handlers, TMR scrub sweeps, flight-ring resync) run under the sanitizer too.
"${build_dir}/bench/chaos_soak" --runs 30 --jobs 4 --control-plane --csv "${build_dir}/chaos_soak_control_sanitized.csv" > /dev/null
# Reconfiguration storms open periodic live-resize windows while faults land
# inside them — the quiesce/apply/resume path, the suspended-rule deque, and
# the frontier-hold interactions all churn channel state under the sanitizer.
"${build_dir}/bench/chaos_soak" --runs 30 --jobs 4 --reconfigure --csv "${build_dir}/chaos_soak_reconfig_sanitized.csv" > /dev/null
