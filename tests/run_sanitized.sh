#!/usr/bin/env sh
# Configures, builds, and runs the full test suite under AddressSanitizer +
# UndefinedBehaviorSanitizer (the SCCFT_SANITIZE CMake option).
#
# The coroutine-based runtime hands coroutine frames across scheduler events;
# the classes of bug that matter most here — a stale wake-up resuming a frame
# a restart already destroyed, a double resume, a container invalidating a
# parked handle — are exactly what ASan/UBSan catch and plain tests may miss.
#
# Usage: tests/run_sanitized.sh [build-dir]   (default: build-sanitize)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"${repo_root}/build-sanitize"}

cmake -B "${build_dir}" -S "${repo_root}" -DSCCFT_SANITIZE=ON
cmake --build "${build_dir}" -j "$(nproc)"
# -LE bench: the wall-time gates (e.g. micro_overhead's 2% trace-overhead
# budget) are meaningless under sanitizer instrumentation.
ctest --test-dir "${build_dir}" -j "$(nproc)" --output-on-failure -LE bench
# Drive the parallel campaign path (worker pool, per-thread log capture,
# synchronized memoization caches) under ASan/UBSan: data races on the shared
# caches or the capture stack would surface here, not in the serial suite.
"${build_dir}/bench/fault_campaign" --jobs 2 --csv "${build_dir}/fault_campaign_sanitized.csv" > /dev/null
