// Curve/model text serialization tests: round-trip identity.
#include <gtest/gtest.h>

#include "rtc/gpc.hpp"
#include "rtc/minplus.hpp"
#include "rtc/online/estimator.hpp"
#include "rtc/serialize.hpp"
#include "rtc/sizing.hpp"
#include "util/assert.hpp"

namespace sccft::rtc {
namespace {

void expect_equal_on(const Curve& a, const Curve& b, TimeNs horizon) {
  for (TimeNs t = 0; t <= horizon; t += horizon / 200 + 1) {
    ASSERT_EQ(a.value_at(t), b.value_at(t)) << "at " << t;
  }
  EXPECT_DOUBLE_EQ(a.long_term_rate(), b.long_term_rate());
}

TEST(Serialize, PjdRoundTrip) {
  const PJD model = PJD::from_ms(6.3, 12.6, 6.3);
  const PJD parsed = pjd_from_text(to_text(model));
  EXPECT_EQ(parsed, model);
}

TEST(Serialize, PjdUpperLowerRoundTrip) {
  const PJD model = PJD::from_ms(30, 5, 30);
  PJDUpperCurve upper(model);
  PJDLowerCurve lower(model);
  const auto upper2 = curve_from_text(curve_to_text(upper));
  const auto lower2 = curve_from_text(curve_to_text(lower));
  expect_equal_on(upper, *upper2, from_ms(500.0));
  expect_equal_on(lower, *lower2, from_ms(500.0));
}

TEST(Serialize, RateLatencyRoundTrip) {
  RateLatencyCurve service(from_ms(4.0), from_ms(2.0));
  const auto parsed = curve_from_text(curve_to_text(service));
  expect_equal_on(service, *parsed, from_ms(300.0));
}

TEST(Serialize, ZeroRoundTrip) {
  ZeroCurve zero;
  const auto parsed = curve_from_text(curve_to_text(zero));
  expect_equal_on(zero, *parsed, from_ms(100.0));
}

TEST(Serialize, StaircaseWithTailRoundTrip) {
  StaircaseCurve curve(2, {{10, 1}, {25, 3}}, 25, 7, 2, "x");
  const auto parsed = curve_from_text(curve_to_text(curve));
  expect_equal_on(curve, *parsed, 500);
}

TEST(Serialize, ComposedCurveRoundTrip) {
  // Materialized min-plus results (with their rate tails) survive the trip.
  PJDUpperCurve upper(PJD::from_ms(10, 5, 0));
  RateLatencyCurve service(from_ms(4.0), from_ms(1.0));
  const auto composed = minplus_deconv(upper, service, from_ms(300.0));
  const auto parsed = curve_from_text(curve_to_text(composed));
  expect_equal_on(composed, *parsed, from_ms(600.0));  // beyond the horizon: tail
}

TEST(Serialize, MalformedInputRejected) {
  EXPECT_THROW((void)pjd_from_text("pjd 10"), util::ContractViolation);
  EXPECT_THROW((void)pjd_from_text("nope 1 2 3"), util::ContractViolation);
  EXPECT_THROW((void)curve_from_text("mystery 4"), util::ContractViolation);
  EXPECT_THROW((void)curve_from_text("staircase 0"), util::ContractViolation);
  EXPECT_THROW((void)curve_from_text("pjd-upper 10"), util::ContractViolation);
}

TEST(Serialize, EmpiricalSnapshotRoundTrip) {
  // A live snapshot straight from an estimator...
  online::CurveEstimator estimator({.base_delta = 100, .levels = 4});
  for (TimeNs t = 100; t <= 1500; t += 100) estimator.add_event(t);
  const auto live = estimator.snapshot(1500);
  EXPECT_EQ(snapshot_from_text(snapshot_to_text(live)), live);

  // ...and a hand-built one exercising the edge fields: no events yet
  // (first_event = -1) and a mix of certified / uncertified lower records.
  online::EmpiricalCurveSnapshot edge;
  edge.at = 42;
  edge.events = 0;
  edge.first_event = -1;
  edge.points = {{.delta = 10, .upper = 3, .lower = 1, .lower_valid = true},
                 {.delta = 20, .upper = 5, .lower = 0, .lower_valid = false}};
  EXPECT_EQ(snapshot_from_text(snapshot_to_text(edge)), edge);
}

TEST(Serialize, MalformedSnapshotRejected) {
  // Wrong tag.
  EXPECT_THROW((void)snapshot_from_text("staircase 0"), util::ContractViolation);
  // Truncated header and truncated point list.
  EXPECT_THROW((void)snapshot_from_text("empirical 10 5"), util::ContractViolation);
  EXPECT_THROW((void)snapshot_from_text("empirical 10 5 0 1 100 2"),
               util::ContractViolation);
  // Negative event count.
  EXPECT_THROW((void)snapshot_from_text("empirical 10 -5 0 0"), util::ContractViolation);
  // Implausible point count (must not drive a giant allocation).
  EXPECT_THROW((void)snapshot_from_text("empirical 10 5 0 999999999"),
               util::ContractViolation);
  EXPECT_THROW((void)snapshot_from_text("empirical 10 5 0 -1"), util::ContractViolation);
  // Deltas must be strictly increasing.
  EXPECT_THROW((void)snapshot_from_text("empirical 10 5 0 2 100 1 0 1 100 2 0 1"),
               util::ContractViolation);
  // Negative window counts.
  EXPECT_THROW((void)snapshot_from_text("empirical 10 5 0 1 100 -1 0 1"),
               util::ContractViolation);
  // Valid flag outside {0, 1}, and garbage where a number belongs.
  EXPECT_THROW((void)snapshot_from_text("empirical 10 5 0 1 100 2 0 7"),
               util::ContractViolation);
  EXPECT_THROW((void)snapshot_from_text("empirical 10 five 0 0"), util::ContractViolation);
}

TEST(Serialize, ParsedCurvesUsableInSizing) {
  const auto upper = curve_from_text("pjd-upper 30000000 2000000 30000000");
  const auto lower = curve_from_text("pjd-lower 30000000 30000000 30000000");
  const auto capacity = min_fifo_capacity(*upper, *lower, from_ms(5000.0));
  ASSERT_TRUE(capacity.has_value());
  EXPECT_EQ(*capacity, 3);  // the paper's |R2| for MJPEG
}

}  // namespace
}  // namespace sccft::rtc
