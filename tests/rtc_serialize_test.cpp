// Curve/model text serialization tests: round-trip identity.
#include <gtest/gtest.h>

#include "rtc/gpc.hpp"
#include "rtc/minplus.hpp"
#include "rtc/online/estimator.hpp"
#include "rtc/serialize.hpp"
#include "rtc/sizing.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace sccft::rtc {
namespace {

void expect_equal_on(const Curve& a, const Curve& b, TimeNs horizon) {
  for (TimeNs t = 0; t <= horizon; t += horizon / 200 + 1) {
    ASSERT_EQ(a.value_at(t), b.value_at(t)) << "at " << t;
  }
  EXPECT_DOUBLE_EQ(a.long_term_rate(), b.long_term_rate());
}

TEST(Serialize, PjdRoundTrip) {
  const PJD model = PJD::from_ms(6.3, 12.6, 6.3);
  const PJD parsed = pjd_from_text(to_text(model));
  EXPECT_EQ(parsed, model);
}

TEST(Serialize, PjdUpperLowerRoundTrip) {
  const PJD model = PJD::from_ms(30, 5, 30);
  PJDUpperCurve upper(model);
  PJDLowerCurve lower(model);
  const auto upper2 = curve_from_text(curve_to_text(upper));
  const auto lower2 = curve_from_text(curve_to_text(lower));
  expect_equal_on(upper, *upper2, from_ms(500.0));
  expect_equal_on(lower, *lower2, from_ms(500.0));
}

TEST(Serialize, RateLatencyRoundTrip) {
  RateLatencyCurve service(from_ms(4.0), from_ms(2.0));
  const auto parsed = curve_from_text(curve_to_text(service));
  expect_equal_on(service, *parsed, from_ms(300.0));
}

TEST(Serialize, ZeroRoundTrip) {
  ZeroCurve zero;
  const auto parsed = curve_from_text(curve_to_text(zero));
  expect_equal_on(zero, *parsed, from_ms(100.0));
}

TEST(Serialize, StaircaseWithTailRoundTrip) {
  StaircaseCurve curve(2, {{10, 1}, {25, 3}}, 25, 7, 2, "x");
  const auto parsed = curve_from_text(curve_to_text(curve));
  expect_equal_on(curve, *parsed, 500);
}

TEST(Serialize, ComposedCurveRoundTrip) {
  // Materialized min-plus results (with their rate tails) survive the trip.
  PJDUpperCurve upper(PJD::from_ms(10, 5, 0));
  RateLatencyCurve service(from_ms(4.0), from_ms(1.0));
  const auto composed = minplus_deconv(upper, service, from_ms(300.0));
  const auto parsed = curve_from_text(curve_to_text(composed));
  expect_equal_on(composed, *parsed, from_ms(600.0));  // beyond the horizon: tail
}

TEST(Serialize, MalformedInputRejected) {
  EXPECT_THROW((void)pjd_from_text("pjd 10"), util::ContractViolation);
  EXPECT_THROW((void)pjd_from_text("nope 1 2 3"), util::ContractViolation);
  EXPECT_THROW((void)curve_from_text("mystery 4"), util::ContractViolation);
  EXPECT_THROW((void)curve_from_text("staircase 0"), util::ContractViolation);
  EXPECT_THROW((void)curve_from_text("pjd-upper 10"), util::ContractViolation);
}

TEST(Serialize, EmpiricalSnapshotRoundTrip) {
  // A live snapshot straight from an estimator...
  online::CurveEstimator estimator({.base_delta = 100, .levels = 4});
  for (TimeNs t = 100; t <= 1500; t += 100) estimator.add_event(t);
  const auto live = estimator.snapshot(1500);
  EXPECT_EQ(snapshot_from_text(snapshot_to_text(live)), live);

  // ...and a hand-built one exercising the edge fields: no events yet
  // (first_event = -1) and a mix of certified / uncertified lower records.
  online::EmpiricalCurveSnapshot edge;
  edge.at = 42;
  edge.events = 0;
  edge.first_event = -1;
  edge.points = {{.delta = 10, .upper = 3, .lower = 1, .lower_valid = true},
                 {.delta = 20, .upper = 5, .lower = 0, .lower_valid = false}};
  EXPECT_EQ(snapshot_from_text(snapshot_to_text(edge)), edge);
}

TEST(Serialize, MalformedSnapshotRejected) {
  // Wrong tag.
  EXPECT_THROW((void)snapshot_from_text("staircase 0"), util::ContractViolation);
  // Truncated header and truncated point list.
  EXPECT_THROW((void)snapshot_from_text("empirical 10 5"), util::ContractViolation);
  EXPECT_THROW((void)snapshot_from_text("empirical 10 5 0 1 100 2"),
               util::ContractViolation);
  // Negative event count.
  EXPECT_THROW((void)snapshot_from_text("empirical 10 -5 0 0"), util::ContractViolation);
  // Implausible point count (must not drive a giant allocation).
  EXPECT_THROW((void)snapshot_from_text("empirical 10 5 0 999999999"),
               util::ContractViolation);
  EXPECT_THROW((void)snapshot_from_text("empirical 10 5 0 -1"), util::ContractViolation);
  // Deltas must be strictly increasing.
  EXPECT_THROW((void)snapshot_from_text("empirical 10 5 0 2 100 1 0 1 100 2 0 1"),
               util::ContractViolation);
  // Negative window counts.
  EXPECT_THROW((void)snapshot_from_text("empirical 10 5 0 1 100 -1 0 1"),
               util::ContractViolation);
  // Valid flag outside {0, 1}, and garbage where a number belongs.
  EXPECT_THROW((void)snapshot_from_text("empirical 10 5 0 1 100 2 0 7"),
               util::ContractViolation);
  EXPECT_THROW((void)snapshot_from_text("empirical 10 five 0 0"), util::ContractViolation);
}

TEST(Serialize, AdaptationConfigRoundTrip) {
  online::AdaptationConfig config;
  config.enabled = true;
  config.window = {.m = 3, .K = 17};
  config.deadband = 5;
  config.cooldown = 123'456;
  config.redimension_period = 7'000'000;
  config.quiesce_window = 250'000;
  config.widen_at = 2;
  config.resize_at = 3;
  config.widen_percent = 25;
  config.grow_percent = 75;
  config.headroom = 6;
  config.max_capacity = 512;
  config.max_divergence = 99;
  EXPECT_EQ(adaptation_from_text(to_text(config)), config);
  // And the defaults survive too (the disabled config every rig starts with).
  EXPECT_EQ(adaptation_from_text(to_text(online::AdaptationConfig{})),
            online::AdaptationConfig{});
}

TEST(Serialize, WeaklyHardWindowRoundTrip) {
  online::WeaklyHardWindow window(online::WeaklyHardParams{.m = 2, .K = 9});
  for (const bool miss : {true, false, false, true, true, false}) {
    window.record(miss);
  }
  const online::WeaklyHardWindow parsed = window_from_text(to_text(window));
  EXPECT_EQ(parsed, window);
  EXPECT_EQ(parsed.misses(), window.misses());
  // A full (wrapped) window round-trips as well.
  for (int i = 0; i < 20; ++i) window.record(i % 3 == 0);
  EXPECT_EQ(window_from_text(to_text(window)), window);
}

TEST(Serialize, MalformedAdaptationRejected) {
  // Wrong tag and truncation.
  EXPECT_THROW((void)adaptation_from_text("adapt 1 2 10"), util::ContractViolation);
  EXPECT_THROW((void)adaptation_from_text("adapt-policy 1 2 10"),
               util::ContractViolation);
  // Enabled flag outside {0, 1}.
  EXPECT_THROW(
      (void)adaptation_from_text("adapt-policy 2 2 10 2 0 0 0 1 2 50 50 4 16 16"),
      util::ContractViolation);
  // m >= K and K beyond the one-word ring.
  EXPECT_THROW(
      (void)adaptation_from_text("adapt-policy 0 10 10 2 0 0 0 1 2 50 50 4 16 16"),
      util::ContractViolation);
  EXPECT_THROW(
      (void)adaptation_from_text("adapt-policy 0 2 65 2 0 0 0 1 2 50 50 4 16 16"),
      util::ContractViolation);
  // Negative hysteresis, inverted ladder, zero percent, zero ceiling.
  EXPECT_THROW(
      (void)adaptation_from_text("adapt-policy 0 2 10 -1 0 0 0 1 2 50 50 4 16 16"),
      util::ContractViolation);
  EXPECT_THROW(
      (void)adaptation_from_text("adapt-policy 0 2 10 2 0 0 0 3 2 50 50 4 16 16"),
      util::ContractViolation);
  EXPECT_THROW(
      (void)adaptation_from_text("adapt-policy 0 2 10 2 0 0 0 1 2 0 50 4 16 16"),
      util::ContractViolation);
  EXPECT_THROW(
      (void)adaptation_from_text("adapt-policy 0 2 10 2 0 0 0 1 2 50 50 4 0 16"),
      util::ContractViolation);
  // Garbage where a number belongs.
  EXPECT_THROW(
      (void)adaptation_from_text("adapt-policy 0 two 10 2 0 0 0 1 2 50 50 4 16 16"),
      util::ContractViolation);
}

TEST(Serialize, MalformedWindowRejected) {
  EXPECT_THROW((void)window_from_text("window 2 10 0 0 0"), util::ContractViolation);
  EXPECT_THROW((void)window_from_text("mk-window 2 10 0 0"), util::ContractViolation);
  // Mask bits beyond K, cursor outside the ring, filled beyond K.
  EXPECT_THROW((void)window_from_text("mk-window 2 10 1024 0 0"),
               util::ContractViolation);
  EXPECT_THROW((void)window_from_text("mk-window 2 10 0 0 10"),
               util::ContractViolation);
  EXPECT_THROW((void)window_from_text("mk-window 2 10 0 11 0"),
               util::ContractViolation);
  // More miss bits than checks recorded.
  EXPECT_THROW((void)window_from_text("mk-window 2 10 3 1 2"),
               util::ContractViolation);
  EXPECT_THROW((void)window_from_text("mk-window 10 10 0 0 0"),
               util::ContractViolation);
}

TEST(Serialize, FuzzedAdaptationLinesNeverMisbehave) {
  // Byte-level mutations of valid lines must either parse to a config that
  // re-serializes losslessly or throw ContractViolation — never crash,
  // hang, or hand back a half-validated object.
  util::Xoshiro256 rng(99);
  const std::string valid_policy = to_text(online::AdaptationConfig{});
  const std::string valid_window =
      to_text(online::WeaklyHardWindow(online::WeaklyHardParams{.m = 2, .K = 10}));
  const std::string charset = "0123456789 -abkz";
  for (int round = 0; round < 400; ++round) {
    std::string line = rng.chance(0.5) ? valid_policy : valid_window;
    const int edits = 1 + static_cast<int>(rng.uniform_int(0, 3));
    for (int e = 0; e < edits; ++e) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(line.size()) - 1));
      if (rng.chance(0.3)) {
        line.erase(pos, 1);
        if (line.empty()) line = " ";
      } else {
        line[pos] = charset[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(charset.size()) - 1))];
      }
    }
    try {
      const auto config = adaptation_from_text(line);
      EXPECT_EQ(adaptation_from_text(to_text(config)), config);
    } catch (const util::ContractViolation&) {
      // expected for most mutations
    }
    try {
      const auto window = window_from_text(line);
      EXPECT_EQ(window_from_text(to_text(window)), window);
    } catch (const util::ContractViolation&) {
    }
  }
}

TEST(Serialize, ParsedCurvesUsableInSizing) {
  const auto upper = curve_from_text("pjd-upper 30000000 2000000 30000000");
  const auto lower = curve_from_text("pjd-lower 30000000 30000000 30000000");
  const auto capacity = min_fifo_capacity(*upper, *lower, from_ms(5000.0));
  ASSERT_TRUE(capacity.has_value());
  EXPECT_EQ(*capacity, 3);  // the paper's |R2| for MJPEG
}

}  // namespace
}  // namespace sccft::rtc
