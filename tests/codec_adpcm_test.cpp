// IMA ADPCM codec tests.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/adpcm/adpcm_codec.hpp"
#include "apps/common/generators.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace sccft::apps::adpcm {
namespace {

double snr_db(const std::vector<std::int16_t>& original,
              const std::vector<std::int16_t>& decoded) {
  SCCFT_ASSERT(original.size() == decoded.size());
  double signal = 0.0, noise = 0.0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    signal += static_cast<double>(original[i]) * original[i];
    const double d = static_cast<double>(original[i]) - decoded[i];
    noise += d * d;
  }
  if (noise == 0.0) return 99.0;
  return 10.0 * std::log10(signal / noise);
}

TEST(StepTable, MonotoneAndBounded) {
  int prev = 0;
  for (int i = 0; i < kStepTableSize; ++i) {
    EXPECT_GT(step_size(i), prev);
    prev = step_size(i);
  }
  EXPECT_EQ(step_size(0), 7);
  EXPECT_EQ(step_size(kStepTableSize - 1), 32'767);
  EXPECT_THROW((void)step_size(kStepTableSize), util::ContractViolation);
}

TEST(Adpcm, FourToOneCompression) {
  const auto samples = generate_audio(1536, 0, 2014);
  const auto encoded = encode(samples);
  // 3072 bytes of PCM -> 8-byte header + 768 nibble bytes.
  EXPECT_EQ(encoded.size(), 8u + 768u);
}

TEST(Adpcm, RoundTripSnrGood) {
  const auto samples = generate_audio(4'096, 0, 2014);
  const auto decoded = decode(encode(samples));
  ASSERT_EQ(decoded.size(), samples.size());
  EXPECT_GT(snr_db(samples, decoded), 20.0);
}

TEST(Adpcm, SilenceIsExact) {
  std::vector<std::int16_t> silence(256, 0);
  const auto decoded = decode(encode(silence));
  for (std::int16_t s : decoded) EXPECT_NEAR(s, 0, 8);
}

TEST(Adpcm, StepFunctionTracked) {
  // A step change: the adaptive predictor should converge within a few
  // samples rather than oscillate forever.
  std::vector<std::int16_t> step(200, 0);
  for (std::size_t i = 100; i < 200; ++i) step[i] = 8'000;
  const auto decoded = decode(encode(step));
  double tail_error = 0.0;
  for (std::size_t i = 150; i < 200; ++i) {
    tail_error += std::abs(decoded[i] - 8'000);
  }
  EXPECT_LT(tail_error / 50.0, 200.0);
}

TEST(Adpcm, OddSampleCount) {
  const auto samples = generate_audio(333, 0, 7);
  const auto decoded = decode(encode(samples));
  EXPECT_EQ(decoded.size(), 333u);
}

TEST(Adpcm, Deterministic) {
  const auto samples = generate_audio(1536, 512, 2014);
  EXPECT_EQ(encode(samples), encode(samples));
}

TEST(Adpcm, BlocksIndependentlyDecodable) {
  const auto a = generate_audio(512, 0, 1);
  const auto b = generate_audio(512, 512, 1);
  // Decoding block b alone equals decoding it after a (stateless blocks).
  const auto encoded_b = encode(b);
  const auto decoded_b1 = decode(encoded_b);
  (void)decode(encode(a));
  const auto decoded_b2 = decode(encoded_b);
  EXPECT_EQ(decoded_b1, decoded_b2);
}

TEST(Adpcm, ExtremesDontOverflow) {
  std::vector<std::int16_t> extremes;
  for (int i = 0; i < 64; ++i) {
    extremes.push_back(i % 2 == 0 ? 32'767 : -32'768);
  }
  const auto decoded = decode(encode(extremes));
  for (std::int16_t s : decoded) {
    EXPECT_GE(s, -32'768);
    EXPECT_LE(s, 32'767);
  }
}

TEST(Adpcm, CorruptBlockRejected) {
  std::vector<std::uint8_t> tiny{1, 2, 3};
  EXPECT_THROW((void)decode(tiny), util::ContractViolation);
  // Truncated payload: header claims more samples than bytes present.
  std::vector<std::uint8_t> truncated{0, 0, 0, 0, 100, 0, 0, 0, 0xAA};
  EXPECT_THROW((void)decode(truncated), util::ContractViolation);
}

TEST(AudioGenerator, BytesRoundTrip) {
  const auto samples = generate_audio(777, 3, 42);
  EXPECT_EQ(bytes_to_samples(samples_to_bytes(samples)), samples);
}

TEST(AudioGenerator, ContinuousAcrossBlocks) {
  // Sample k of block n equals sample 0 of a generation starting at offset k.
  const auto block = generate_audio(100, 1'000, 5);
  const auto shifted = generate_audio(1, 1'050, 5);
  // Tones are phase-continuous; noise differs per-sample seed, so compare
  // within noise amplitude (~300 counts).
  EXPECT_NEAR(block[50], shifted[0], 700);
}

}  // namespace
}  // namespace sccft::apps::adpcm
