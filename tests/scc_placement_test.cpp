// Fleet placement tests (scc/placement.hpp): determinism, anti-affinity,
// MPB accounting, and the diagnostics the greedy placer must fail with.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "scc/placement.hpp"
#include "scc/topology.hpp"
#include "util/rng.hpp"

namespace sccft::scc {
namespace {

/// Randomized-but-seeded request: `streams` four-process chains (producer,
/// two anti-affine replicas, consumer) with varying MPB demands and traffic
/// weights — the same shape ft/fleet.hpp emits, without depending on it.
PlacementRequest random_request(std::uint64_t seed, int streams) {
  util::Xoshiro256 rng(seed);
  PlacementRequest request;
  for (int s = 0; s < streams; ++s) {
    const int base = s * 4;
    const auto mpb = static_cast<std::size_t>(rng.uniform_int(128, 2048));
    const auto weight =
        static_cast<std::uint64_t>(rng.uniform_int(1'000, 1'000'000));
    request.processes.push_back({"s" + std::to_string(s) + ".prod", s, -1, 0});
    request.processes.push_back({"s" + std::to_string(s) + ".r1", s, s, mpb});
    request.processes.push_back({"s" + std::to_string(s) + ".r2", s, s, mpb});
    request.processes.push_back(
        {"s" + std::to_string(s) + ".cons", s, -1, 2 * mpb});
    request.edges.push_back({base, base + 1, weight});
    request.edges.push_back({base, base + 2, weight});
    request.edges.push_back({base + 1, base + 3, weight});
    request.edges.push_back({base + 2, base + 3, weight});
  }
  return request;
}

void expect_invariants(const PlacementRequest& request,
                       const Placement& placement) {
  ASSERT_EQ(placement.process_to_core.size(), request.processes.size());

  // Recompute per-tile MPB use and per-core load from scratch; the published
  // arrays must match and every tile must fit its capacity.
  std::array<std::size_t, kTileCount> mpb{};
  std::array<int, kCoreCount> load{};
  std::map<int, std::set<int>> group_tiles;
  for (std::size_t p = 0; p < request.processes.size(); ++p) {
    const CoreId core = placement.process_to_core[p];
    ASSERT_GE(core.value, 0);
    ASSERT_LT(core.value, kCoreCount);
    const auto tile = static_cast<std::size_t>(core.tile().value);
    mpb[tile] += request.processes[p].mpb_bytes;
    ++load[static_cast<std::size_t>(core.value)];
    if (request.processes[p].anti_affinity_group >= 0) {
      auto& tiles = group_tiles[request.processes[p].anti_affinity_group];
      EXPECT_TRUE(tiles.insert(core.tile().value).second)
          << "anti-affinity group " << request.processes[p].anti_affinity_group
          << " shares tile " << core.tile().value;
    }
  }
  for (std::size_t t = 0; t < static_cast<std::size_t>(kTileCount); ++t) {
    EXPECT_EQ(mpb[t], placement.tile_mpb_used[t]);
    EXPECT_LE(mpb[t], request.tile_mpb_capacity);
  }
  for (std::size_t c = 0; c < static_cast<std::size_t>(kCoreCount); ++c) {
    EXPECT_EQ(load[c], placement.core_load[c]);
    if (request.max_processes_per_core > 0) {
      EXPECT_LE(load[c], request.max_processes_per_core);
    }
  }
}

TEST(Placement, PropertyDeterministicAndFeasibleAcrossRandomSpecs) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const int streams = 1 + static_cast<int>(seed % 12);
    const auto request = random_request(seed, streams);
    const auto a = place_fleet(request);
    const auto b = place_fleet(request);
    EXPECT_EQ(a.process_to_core, b.process_to_core)
        << "placement not deterministic for seed " << seed;
    expect_invariants(request, a);
  }
}

TEST(Placement, SupportsMoreProcessesThanCores) {
  // 30 streams x 4 processes = 120 processes on 48 cores — beyond both the
  // one-process-per-tile mapper and one-process-per-core.
  const auto request = random_request(7, 30);
  ASSERT_GT(request.processes.size(), static_cast<std::size_t>(kCoreCount));
  const auto placement = place_fleet(request);
  expect_invariants(request, placement);
  EXPECT_GE(placement.max_core_load(), 3);  // 120 processes / 48 cores
}

TEST(Placement, RespectsPerCoreCap) {
  PlacementRequest request;
  for (int p = 0; p < kCoreCount; ++p) {
    request.processes.push_back({"p" + std::to_string(p), 0, -1, 0});
  }
  request.max_processes_per_core = 1;
  const auto placement = place_fleet(request);
  expect_invariants(request, placement);
  EXPECT_EQ(placement.max_core_load(), 1);
}

TEST(Placement, CostMatchesMappingMetricOnSingleStream) {
  // One four-process stream fits the paper mapper too; the fleet placer's
  // cost must use the same weight * hops metric, so a zero-hop placement
  // costs zero and any placement's cost is exactly recomputable.
  const auto request = random_request(3, 1);
  const auto placement = place_fleet(request);
  std::uint64_t expected = 0;
  for (const auto& edge : request.edges) {
    const auto from =
        placement.process_to_core[static_cast<std::size_t>(edge.from_process)];
    const auto to =
        placement.process_to_core[static_cast<std::size_t>(edge.to_process)];
    expected += edge.bytes_per_period *
                static_cast<std::uint64_t>(hop_count(from.tile(), to.tile()));
  }
  EXPECT_EQ(placement.cost(request.edges), expected);
}

TEST(Placement, AntiAffinityForcedAcrossTiles) {
  // 24 groups of 2 = every tile must host exactly one member of two groups;
  // still feasible. A 25th group member count per tile is covered below.
  PlacementRequest request;
  for (int g = 0; g < kTileCount; ++g) {
    request.processes.push_back({"a" + std::to_string(g), g, g, 0});
    request.processes.push_back({"b" + std::to_string(g), g, g, 0});
  }
  const auto placement = place_fleet(request);
  expect_invariants(request, placement);
}

TEST(Placement, InfeasibleAntiAffinityThrowsWithDiagnostics) {
  // One group with kTileCount + 1 members cannot avoid sharing a tile.
  PlacementRequest request;
  for (int p = 0; p <= kTileCount; ++p) {
    request.processes.push_back({"g" + std::to_string(p), 0, /*group=*/0, 0});
  }
  try {
    (void)place_fleet(request);
    FAIL() << "expected PlacementError";
  } catch (const PlacementError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("g" + std::to_string(kTileCount)), std::string::npos)
        << what;
  }
}

TEST(Placement, InfeasibleMpbThrowsWithDiagnostics) {
  PlacementRequest request;
  // Two processes each demanding more than half the 16 KiB tile MPB: the
  // second cannot share the first's tile, and a third demanding more than a
  // whole MPB can never be placed.
  request.processes.push_back({"fits", 0, -1, kMpbBytesPerTile});
  request.processes.push_back(
      {"too-big", 1, -1, static_cast<std::size_t>(kMpbBytesPerTile) + 1});
  try {
    (void)place_fleet(request);
    FAIL() << "expected PlacementError";
  } catch (const PlacementError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("too-big"), std::string::npos) << what;
    EXPECT_NE(what.find(std::to_string(kMpbBytesPerTile + 1)),
              std::string::npos)
        << what;
  }
}

TEST(Placement, MalformedEdgeThrowsWithDiagnostics) {
  PlacementRequest request;
  request.processes.push_back({"only", 0, -1, 0});
  request.edges.push_back({0, 5, 100});
  try {
    (void)place_fleet(request);
    FAIL() << "expected PlacementError";
  } catch (const PlacementError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find('5'), std::string::npos) << what;
    EXPECT_NE(what.find('1'), std::string::npos) << what;  // process count
  }
}

TEST(Placement, EmptyRequestRejected) {
  EXPECT_THROW((void)place_fleet(PlacementRequest{}), PlacementError);
}

TEST(Placement, HeavyNeighboursLandClose) {
  // The greedy cost term must keep a heavily-communicating pair within a
  // couple of hops even with background streams competing for tiles.
  auto request = random_request(11, 6);
  request.edges.push_back({0, 3, 50'000'000});  // dominate everything else
  const auto placement = place_fleet(request);
  const auto a = placement.process_to_core[0].tile();
  const auto b = placement.process_to_core[3].tile();
  EXPECT_LE(hop_count(a, b), 2);
}

}  // namespace
}  // namespace sccft::scc
