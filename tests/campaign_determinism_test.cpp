// Parallel-campaign determinism tests: the worker-pool executor
// (util::parallel_for_ordered), the per-thread log capture it relies on, and
// the end-to-end guarantee that a campaign folded from parallel workers is
// byte-identical to the serial campaign at any job count.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/adpcm/app.hpp"
#include "apps/common/experiment.hpp"
#include "bench/campaign.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"

namespace sccft {
namespace {

// --- parallel_for_ordered --------------------------------------------------

TEST(ParallelForOrdered, SerialPathRunsInIndexOrder) {
  std::vector<int> order;
  util::parallel_for_ordered(5, 1, [&](int i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForOrdered, EveryIndexRunsExactlyOnce) {
  for (const int jobs : {1, 2, 4, 8}) {
    constexpr int kN = 64;
    std::vector<std::atomic<int>> hits(kN);
    util::parallel_for_ordered(kN, jobs, [&](int i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (int i = 0; i < kN; ++i) {
      EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
          << "jobs=" << jobs << " index=" << i;
    }
  }
}

TEST(ParallelForOrdered, ZeroTasksIsANoop) {
  util::parallel_for_ordered(0, 4, [](int) { FAIL() << "must not be called"; });
}

TEST(ParallelForOrdered, MoreJobsThanTasksIsFine) {
  std::vector<std::atomic<int>> hits(3);
  util::parallel_for_ordered(3, 16, [&](int i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1);
  }
}

TEST(ParallelForOrdered, LowestIndexExceptionWinsAtAnyJobCount) {
  // Indices 3 and 7 both throw; the rethrown exception must be index 3's so
  // a failing campaign reports the same error at --jobs 1 and --jobs N.
  for (const int jobs : {1, 2, 4}) {
    try {
      util::parallel_for_ordered(10, jobs, [](int i) {
        if (i == 3 || i == 7) {
          throw std::runtime_error("task " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception at jobs=" << jobs;
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task 3") << "jobs=" << jobs;
    }
  }
}

TEST(ParallelForOrdered, RemainingTasksStillRunAfterAFailure) {
  std::vector<std::atomic<int>> hits(8);
  EXPECT_THROW(util::parallel_for_ordered(8, 2,
                                          [&](int i) {
                                            hits[static_cast<std::size_t>(i)]
                                                .fetch_add(1);
                                            if (i == 0) {
                                              throw std::runtime_error("boom");
                                            }
                                          }),
               std::runtime_error);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index=" << i;
  }
}

// --- ScopedLogCapture ------------------------------------------------------

TEST(ScopedLogCapture, CapturesThisThreadsLines) {
  const util::LogLevel saved = util::log_level();
  util::set_log_level(util::LogLevel::kInfo);
  util::ScopedLogCapture capture;
  util::log_line(util::LogLevel::kInfo, "test", "captured line");
  util::set_log_level(saved);
  const std::string text = capture.take();
  EXPECT_NE(text.find("captured line"), std::string::npos);
  EXPECT_NE(text.find("test"), std::string::npos);
  EXPECT_TRUE(capture.take().empty());  // take() drains the buffer
}

TEST(ScopedLogCapture, WorkerCapturesAreIndependent) {
  const util::LogLevel saved = util::log_level();
  util::set_log_level(util::LogLevel::kInfo);
  std::vector<std::string> captured(8);
  util::parallel_for_ordered(8, 4, [&](int i) {
    util::ScopedLogCapture capture;
    util::log_line(util::LogLevel::kInfo, "worker", "run " + std::to_string(i));
    captured[static_cast<std::size_t>(i)] = capture.take();
  });
  util::set_log_level(saved);
  for (int i = 0; i < 8; ++i) {
    const std::string& text = captured[static_cast<std::size_t>(i)];
    EXPECT_NE(text.find("run " + std::to_string(i)), std::string::npos)
        << "index=" << i;
    // Exactly one line: no cross-thread bleed-through.
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 1) << "index=" << i;
  }
}

TEST(ScopedLogCapture, NestsPerThread) {
  const util::LogLevel saved = util::log_level();
  util::set_log_level(util::LogLevel::kInfo);
  util::ScopedLogCapture outer;
  util::log_line(util::LogLevel::kInfo, "test", "outer line");
  {
    util::ScopedLogCapture inner;
    util::log_line(util::LogLevel::kInfo, "test", "inner line");
    const std::string text = inner.take();
    EXPECT_NE(text.find("inner line"), std::string::npos);
    EXPECT_EQ(text.find("outer line"), std::string::npos);
  }
  util::log_line(util::LogLevel::kInfo, "test", "outer again");
  util::set_log_level(saved);
  const std::string text = outer.take();
  EXPECT_NE(text.find("outer line"), std::string::npos);
  EXPECT_NE(text.find("outer again"), std::string::npos);
  EXPECT_EQ(text.find("inner line"), std::string::npos);
}

// --- end-to-end campaign determinism ---------------------------------------

// The tentpole guarantee: a campaign fanned out over N workers folds to
// results byte-identical to the serial campaign. ADPCM is the cheapest app;
// short runs keep this inside unit-test budget.

apps::ExperimentOptions campaign_options() {
  apps::ExperimentOptions options;
  options.run_periods = 80;
  options.fault_after_periods = 40;
  return options;
}

TEST(CampaignDeterminism, FaultCampaignIdenticalAcrossJobCounts) {
  apps::ExperimentRunner runner(apps::adpcm::make_application());
  const auto serial = bench::run_fault_campaign(
      runner, campaign_options(), ft::ReplicaIndex::kReplica1, 6, 1);
  for (const int jobs : {2, 4}) {
    const auto parallel = bench::run_fault_campaign(
        runner, campaign_options(), ft::ReplicaIndex::kReplica1, 6, jobs);
    EXPECT_EQ(parallel.seeds, serial.seeds) << "jobs=" << jobs;
    EXPECT_EQ(parallel.detected, serial.detected) << "jobs=" << jobs;
    EXPECT_EQ(parallel.correct_replica, serial.correct_replica) << "jobs=" << jobs;
    EXPECT_EQ(parallel.false_positives, serial.false_positives) << "jobs=" << jobs;
    EXPECT_EQ(parallel.first_latency_ms.samples(), serial.first_latency_ms.samples())
        << "jobs=" << jobs;
    EXPECT_EQ(parallel.replicator_latency_ms.samples(),
              serial.replicator_latency_ms.samples())
        << "jobs=" << jobs;
    EXPECT_EQ(parallel.selector_latency_ms.samples(),
              serial.selector_latency_ms.samples())
        << "jobs=" << jobs;
    // The merged registry is the source of every table/CSV number: its
    // rendered form must match byte for byte.
    EXPECT_EQ(parallel.merged.render_csv(), serial.merged.render_csv())
        << "jobs=" << jobs;
  }
}

TEST(CampaignDeterminism, FaultFreeCampaignIdenticalAcrossJobCounts) {
  apps::ExperimentRunner runner(apps::adpcm::make_application());
  auto options = campaign_options();
  const auto serial = bench::run_fault_free_campaign(runner, options, 6, 1);
  const auto parallel = bench::run_fault_free_campaign(runner, options, 6, 4);
  EXPECT_EQ(parallel.seeds, serial.seeds);
  EXPECT_EQ(parallel.false_positives, serial.false_positives);
  EXPECT_EQ(parallel.max_fill_r1, serial.max_fill_r1);
  EXPECT_EQ(parallel.max_fill_r2, serial.max_fill_r2);
  EXPECT_EQ(parallel.max_fill_s1, serial.max_fill_s1);
  EXPECT_EQ(parallel.max_fill_s2, serial.max_fill_s2);
  EXPECT_EQ(parallel.interarrival_ms.samples(), serial.interarrival_ms.samples());
  EXPECT_EQ(parallel.merged.render_csv(), serial.merged.render_csv());
}

TEST(CampaignDeterminism, ParallelCampaignsRejectRunLocalSinks) {
  // Run-local sinks (trace_sink, vcd_path) cannot be shared by concurrent
  // runs; the executor must refuse rather than race.
  apps::ExperimentRunner runner(apps::adpcm::make_application());
  auto options = campaign_options();
  options.vcd_path = "/tmp/sccft_campaign_determinism.vcd";
  EXPECT_THROW(bench::run_campaign_runs(runner, options, 2, 2),
               util::ContractViolation);
  // Serial execution still allows them.
  const auto runs = bench::run_campaign_runs(runner, options, 1, 1);
  EXPECT_EQ(runs.size(), 1u);
}

}  // namespace
}  // namespace sccft
