// Fault taxonomy tests: injector campaign contracts, transient silence with
// self-resume, intermittent bursts, payload corruption quarantine/conviction,
// and NoC link faults with bounded retransmission.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "ft/fault_injector.hpp"
#include "ft/fault_plan.hpp"
#include "ft/framework.hpp"
#include "kpn/network.hpp"
#include "kpn/timing.hpp"
#include "scc/noc.hpp"
#include "util/assert.hpp"

namespace sccft::ft {
namespace {

// ---- duplicated-network rig (same shape as ft_recovery_test) --------------

struct Rig {
  sim::Simulator simulator;
  kpn::Network net{simulator};
  ft::AppTimingSpec timing;
  std::optional<FaultTolerantHarness> harness;
  std::vector<kpn::Process*> replicas;
  std::vector<std::uint64_t> consumed;
  bool gap = false;
  bool duplicate = false;
  std::uint64_t corrupt_delivered = 0;

  Rig() {
    timing.producer = rtc::PJD::from_ms(10, 1, 10);
    timing.replica1_in = timing.replica1_out = rtc::PJD::from_ms(10, 2, 10);
    timing.replica2_in = timing.replica2_out = rtc::PJD::from_ms(10, 6, 10);
    timing.consumer = rtc::PJD::from_ms(10, 1, 10);
    harness.emplace(net, FaultTolerantHarness::Config{.timing = timing});

    net.add_process("producer", scc::CoreId{0}, 1,
                    [this](kpn::ProcessContext& ctx) -> sim::Task {
                      kpn::TimingShaper shaper(timing.producer, 0, ctx.rng());
                      for (std::uint64_t k = 0;; ++k) {
                        const rtc::TimeNs t = shaper.next_emission(ctx.now());
                        if (t > ctx.now()) co_await ctx.delay(t - ctx.now());
                        std::vector<std::uint8_t> payload(4, static_cast<std::uint8_t>(k));
                        co_await kpn::write(harness->replicator(),
                                            kpn::Token(std::move(payload), k, ctx.now()));
                        shaper.commit(ctx.now());
                      }
                    });

    auto replica_body = [this](ReplicaIndex which, rtc::PJD model) {
      return [this, which, model](kpn::ProcessContext& ctx) -> sim::Task {
        kpn::TimingShaper emit(model, ctx.now(), ctx.rng());
        while (true) {
          SCCFT_FAULT_GATE(ctx);
          kpn::Token token =
              co_await kpn::read(harness->replicator().read_interface(which));
          SCCFT_FAULT_GATE(ctx);
          const rtc::TimeNs t = emit.next_emission(ctx.now());
          if (t > ctx.now()) co_await ctx.compute(t - ctx.now());
          SCCFT_FAULT_GATE(ctx);
          co_await kpn::write(harness->selector().write_interface(which), token);
          emit.commit(ctx.now());
        }
      };
    };
    replicas.push_back(&net.add_process(
        "r1", scc::CoreId{2}, 2, replica_body(ReplicaIndex::kReplica1, timing.replica1_out)));
    replicas.push_back(&net.add_process(
        "r2", scc::CoreId{4}, 3, replica_body(ReplicaIndex::kReplica2, timing.replica2_out)));

    net.add_process("consumer", scc::CoreId{6}, 4,
                    [this](kpn::ProcessContext& ctx) -> sim::Task {
                      kpn::TimingShaper shaper(timing.consumer, 0, ctx.rng());
                      std::uint64_t expected = 0;
                      while (true) {
                        const rtc::TimeNs t = shaper.next_emission(ctx.now());
                        if (t > ctx.now()) co_await ctx.delay(t - ctx.now());
                        kpn::Token token = co_await kpn::read(harness->selector());
                        shaper.commit(ctx.now());
                        if (token.seq() > expected) gap = true;
                        if (token.seq() < expected) duplicate = true;
                        if (!token.verify_checksum()) ++corrupt_delivered;
                        expected = token.seq() + 1;
                        consumed.push_back(token.seq());
                      }
                    });
  }

  [[nodiscard]] FaultCampaign::Wiring wiring() {
    FaultCampaign::Wiring w;
    w.replicator = &harness->replicator();
    w.selector = &harness->selector();
    w.processes[0] = {replicas[0]};
    w.processes[1] = {replicas[1]};
    return w;
  }
};

// ---- FaultInjector cancel()/reset() contracts -----------------------------

struct InjectorRig {
  sim::Simulator simulator;
  kpn::Network net{simulator};
  kpn::Process* victim = nullptr;

  InjectorRig() {
    victim = &net.add_process("victim", scc::CoreId{0}, 1,
                              [](kpn::ProcessContext& ctx) -> sim::Task {
                                while (true) {
                                  SCCFT_FAULT_GATE(ctx);
                                  co_await ctx.delay(1'000'000);
                                }
                              });
  }
};

TEST(FaultInjector, CancelRevokesAPendingFault) {
  InjectorRig rig;
  FaultInjector injector(rig.simulator);
  injector.schedule({rig.victim}, rtc::from_ms(5.0));
  injector.cancel();
  rig.net.run_until(rtc::from_ms(20.0));

  EXPECT_FALSE(injector.fired());
  EXPECT_FALSE(injector.armed());
  EXPECT_FALSE(rig.victim->context().fault().faulty());
  // After a cancel the injector is re-armable.
  injector.schedule({rig.victim}, rtc::from_ms(30.0));
  rig.net.run_until(rtc::from_ms(40.0));
  EXPECT_TRUE(injector.fired());
  EXPECT_TRUE(rig.victim->context().fault().silenced);
}

TEST(FaultInjector, CancelWithoutPendingFaultViolatesContract) {
  InjectorRig rig;
  FaultInjector injector(rig.simulator);
  EXPECT_THROW(injector.cancel(), util::ContractViolation);  // never armed

  injector.schedule({rig.victim}, rtc::from_ms(5.0));
  rig.net.run_until(rtc::from_ms(10.0));
  ASSERT_TRUE(injector.fired());
  EXPECT_THROW(injector.cancel(), util::ContractViolation);  // already fired
}

TEST(FaultInjector, ResetReArmsAfterAFiredFault) {
  InjectorRig rig;
  FaultInjector injector(rig.simulator);
  injector.reset();  // legal: nothing scheduled yet
  injector.schedule({rig.victim}, rtc::from_ms(5.0));
  rig.net.run_until(rtc::from_ms(10.0));
  ASSERT_TRUE(injector.fired());

  injector.reset();
  EXPECT_FALSE(injector.armed());
  EXPECT_FALSE(injector.fired());
  EXPECT_EQ(injector.injected_at(), -1);
  // The single-fault precondition holds again: a second schedule is legal.
  injector.schedule({rig.victim}, rtc::from_ms(20.0), FaultMode::kRateDegradation, 2.0);
  rig.net.run_until(rtc::from_ms(25.0));
  EXPECT_TRUE(injector.fired());
}

TEST(FaultInjector, ResetOverAPendingFaultViolatesContract) {
  InjectorRig rig;
  FaultInjector injector(rig.simulator);
  injector.schedule({rig.victim}, rtc::from_ms(5.0));
  EXPECT_THROW(injector.reset(), util::ContractViolation);  // armed, not fired
  injector.cancel();  // the legal way out
  injector.reset();   // now a no-op
}

// ---- transient silence ----------------------------------------------------

TEST(FaultCampaign, TransientSilenceSelfResumes) {
  Rig rig;
  FaultCampaign campaign(rig.simulator, rig.wiring());
  campaign.add({.kind = FaultKind::kTransientSilence,
                .replica = ReplicaIndex::kReplica1,
                .at = rtc::from_ms(300.0),
                .duration = rtc::from_ms(15.0)});
  campaign.arm();

  std::uint64_t received_at_outage_end = 0;
  rig.simulator.schedule_at(rtc::from_ms(320.0), [&] {
    received_at_outage_end =
        rig.harness->selector().tokens_received(ReplicaIndex::kReplica1);
  });
  rig.net.run_until(rtc::from_sec(1.0));

  EXPECT_FALSE(rig.gap);
  EXPECT_FALSE(rig.duplicate);
  EXPECT_GT(rig.consumed.size(), 80u);
  // The halt ended by itself: the fault state is clear and the replica kept
  // delivering tokens after the outage window.
  EXPECT_FALSE(rig.replicas[0]->context().fault().silenced);
  EXPECT_GT(rig.harness->selector().tokens_received(ReplicaIndex::kReplica1),
            received_at_outage_end);
  ASSERT_EQ(campaign.injections().size(), 1u);
  EXPECT_EQ(campaign.injections()[0].kind, FaultKind::kTransientSilence);
  EXPECT_EQ(campaign.injections()[0].at, rtc::from_ms(300.0));
}

// ---- intermittent bursts --------------------------------------------------

TEST(FaultCampaign, IntermittentBurstsFollowTheSeededSchedule) {
  Rig rig;
  FaultCampaign campaign(rig.simulator, rig.wiring());
  campaign.add({.kind = FaultKind::kIntermittentSilence,
                .replica = ReplicaIndex::kReplica2,
                .at = rtc::from_ms(200.0),
                .duration = rtc::from_ms(300.0),
                .burst_on_mean = rtc::from_ms(10.0),
                .burst_off_mean = rtc::from_ms(40.0),
                .seed = 42});
  campaign.arm();
  rig.net.run_until(rtc::from_sec(1.0));

  // Several distinct bursts were injected, all inside the window.
  EXPECT_GE(campaign.injections().size(), 3u);
  for (const auto& burst : campaign.injections()) {
    EXPECT_EQ(burst.kind, FaultKind::kIntermittentSilence);
    EXPECT_EQ(burst.replica, ReplicaIndex::kReplica2);
    EXPECT_GE(burst.at, rtc::from_ms(200.0));
    EXPECT_LT(burst.at, rtc::from_ms(500.0));
  }
  // Short bursts against a large off-time never lose data.
  EXPECT_FALSE(rig.gap);
  EXPECT_FALSE(rig.duplicate);
  EXPECT_GT(rig.consumed.size(), 80u);
  // After the window the replica runs clean again.
  EXPECT_FALSE(rig.replicas[1]->context().fault().silenced);
}

TEST(FaultCampaign, IntermittentScheduleIsDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    Rig rig;
    FaultCampaign campaign(rig.simulator, rig.wiring());
    campaign.add({.kind = FaultKind::kIntermittentSilence,
                  .replica = ReplicaIndex::kReplica2,
                  .at = rtc::from_ms(200.0),
                  .duration = rtc::from_ms(300.0),
                  .burst_on_mean = rtc::from_ms(10.0),
                  .burst_off_mean = rtc::from_ms(40.0),
                  .seed = seed});
    campaign.arm();
    rig.net.run_until(rtc::from_sec(0.6));
    std::vector<rtc::TimeNs> times;
    for (const auto& burst : campaign.injections()) times.push_back(burst.at);
    return times;
  };
  const auto a = run(7);
  const auto b = run(7);
  const auto c = run(8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

// ---- payload corruption ---------------------------------------------------

TEST(FaultCampaign, CorruptionIsQuarantinedAndConvicted) {
  Rig rig;
  FaultCampaign campaign(rig.simulator, rig.wiring());
  campaign.add({.kind = FaultKind::kPayloadCorruption,
                .replica = ReplicaIndex::kReplica1,
                .at = rtc::from_ms(300.0),
                .corrupt_probability = 1.0,
                .seed = 3});
  campaign.arm();
  rig.net.run_until(rtc::from_sec(1.0));

  // Not a single corrupted token reached the consumer, and the stream shows
  // neither gaps nor duplicates: every quarantined write was covered by the
  // peer's healthy copy.
  EXPECT_EQ(rig.corrupt_delivered, 0u);
  EXPECT_FALSE(rig.gap);
  EXPECT_FALSE(rig.duplicate);
  EXPECT_GT(rig.consumed.size(), 80u);

  // Repeated mismatches convicted the corrupting replica — and only it.
  EXPECT_GE(rig.harness->selector().crc_mismatches(ReplicaIndex::kReplica1), 3u);
  ASSERT_TRUE(rig.harness->selector().fault(ReplicaIndex::kReplica1));
  EXPECT_EQ(rig.harness->selector().detection(ReplicaIndex::kReplica1)->rule,
            DetectionRule::kSelectorCorruption);
  EXPECT_FALSE(rig.harness->selector().fault(ReplicaIndex::kReplica2));
  EXPECT_FALSE(rig.harness->replicator().fault(ReplicaIndex::kReplica2));
  EXPECT_EQ(rig.harness->selector().crc_mismatches(ReplicaIndex::kReplica2), 0u);
}

TEST(Selector, QuarantineBelowThresholdDoesNotConvict) {
  sim::Simulator simulator;
  SelectorChannel selector(simulator, "sel",
                           {.capacity1 = 4,
                            .capacity2 = 4,
                            .divergence_threshold = 0,
                            .enable_stall_rule = false,
                            .corruption_conviction_threshold = 3});
  auto& w1 = selector.write_interface(ReplicaIndex::kReplica1);
  auto& w2 = selector.write_interface(ReplicaIndex::kReplica2);
  auto make = [](std::uint64_t seq) {
    return kpn::Token(std::vector<std::uint8_t>{static_cast<std::uint8_t>(seq), 7}, seq, 0);
  };

  // Two corrupted tokens: quarantined, no conviction yet.
  ASSERT_TRUE(w1.try_write(make(0).corrupted(0)));
  ASSERT_TRUE(w1.try_write(make(1).corrupted(5)));
  EXPECT_EQ(selector.crc_mismatches(ReplicaIndex::kReplica1), 2u);
  EXPECT_FALSE(selector.fault(ReplicaIndex::kReplica1));

  // The peer's healthy copies are delivered as first-of-pair: no token lost.
  ASSERT_TRUE(w2.try_write(make(0)));
  ASSERT_TRUE(w2.try_write(make(1)));
  auto t0 = selector.try_read();
  auto t1 = selector.try_read();
  ASSERT_TRUE(t0 && t1);
  EXPECT_EQ(t0->seq(), 0u);
  EXPECT_EQ(t1->seq(), 1u);
  EXPECT_TRUE(t0->verify_checksum());
  EXPECT_TRUE(t1->verify_checksum());

  // A healthy write from the offender is accepted normally afterwards.
  ASSERT_TRUE(w1.try_write(make(2)));
  ASSERT_TRUE(w2.try_write(make(2)));
  auto t2 = selector.try_read();
  ASSERT_TRUE(t2.has_value());
  EXPECT_EQ(t2->seq(), 2u);
  EXPECT_FALSE(selector.fault(ReplicaIndex::kReplica1));
}

TEST(Selector, ThirdMismatchConvictsViaCorruptionRule) {
  sim::Simulator simulator;
  SelectorChannel selector(simulator, "sel",
                           {.capacity1 = 8,
                            .capacity2 = 8,
                            .divergence_threshold = 0,
                            .enable_stall_rule = false,
                            .corruption_conviction_threshold = 3});
  auto& w1 = selector.write_interface(ReplicaIndex::kReplica1);
  auto make = [](std::uint64_t seq) {
    return kpn::Token(std::vector<std::uint8_t>{static_cast<std::uint8_t>(seq)}, seq, 0);
  };
  for (std::uint64_t k = 0; k < 3; ++k) {
    ASSERT_TRUE(w1.try_write(make(k).corrupted(k)));
  }
  ASSERT_TRUE(selector.fault(ReplicaIndex::kReplica1));
  EXPECT_EQ(selector.detection(ReplicaIndex::kReplica1)->rule,
            DetectionRule::kSelectorCorruption);
  EXPECT_FALSE(selector.fault(ReplicaIndex::kReplica2));
}

TEST(Selector, ChecksumVerificationCanBeDisabled) {
  sim::Simulator simulator;
  SelectorChannel selector(simulator, "sel",
                           {.capacity1 = 8,
                            .capacity2 = 8,
                            .enable_stall_rule = false,
                            .verify_checksums = false});
  auto& w1 = selector.write_interface(ReplicaIndex::kReplica1);
  const kpn::Token bad =
      kpn::Token(std::vector<std::uint8_t>{1, 2}, 0, 0).corrupted(3);
  ASSERT_TRUE(w1.try_write(bad));
  EXPECT_EQ(selector.crc_mismatches(ReplicaIndex::kReplica1), 0u);
  auto out = selector.try_read();
  ASSERT_TRUE(out.has_value());
  EXPECT_FALSE(out->verify_checksum());  // delivered unchecked, as configured
}

// ---- NoC link faults ------------------------------------------------------

TEST(NocFaults, DropsCauseBoundedRetransmission) {
  scc::NocModel clean;
  const auto baseline =
      clean.transfer_ex(scc::CoreId{0}, scc::CoreId{10}, 1024, 0);
  ASSERT_TRUE(baseline.delivered);

  scc::NocModel noc;
  noc.inject_faults({.chunk_drop_probability = 0.5, .max_retries = 64, .seed = 5});
  // With a generous retry budget every message still gets through, at the
  // cost of retransmission latency.
  int total_retransmissions = 0;
  for (int i = 0; i < 32; ++i) {
    const auto outcome =
        noc.transfer_ex(scc::CoreId{0}, scc::CoreId{10}, 1024, 0);
    EXPECT_TRUE(outcome.delivered);
    EXPECT_GE(outcome.arrival, baseline.arrival);
    total_retransmissions += outcome.retransmissions;
  }
  EXPECT_GT(total_retransmissions, 0);
  EXPECT_EQ(noc.messages_lost(), 0u);
  EXPECT_EQ(noc.chunks_dropped(), static_cast<std::uint64_t>(total_retransmissions));
}

TEST(NocFaults, ExhaustedRetriesLoseTheMessage) {
  scc::NocModel noc;
  noc.inject_faults({.chunk_drop_probability = 1.0, .max_retries = 2});
  const auto outcome = noc.transfer_ex(scc::CoreId{0}, scc::CoreId{10}, 64, 0);
  EXPECT_FALSE(outcome.delivered);
  EXPECT_EQ(outcome.retransmissions, 2);
  EXPECT_EQ(noc.messages_lost(), 1u);
  EXPECT_EQ(noc.chunks_dropped(), 3u);  // initial try + 2 retries
}

TEST(NocFaults, WindowGatesFaultActivity) {
  scc::NocModel noc;
  noc.inject_faults({.chunk_drop_probability = 1.0,
                     .window_start = 1'000'000,
                     .window_end = 2'000'000,
                     .max_retries = 0});
  EXPECT_TRUE(noc.transfer_ex(scc::CoreId{0}, scc::CoreId{10}, 64, 0).delivered);
  EXPECT_FALSE(
      noc.transfer_ex(scc::CoreId{0}, scc::CoreId{10}, 64, 1'500'000).delivered);
  EXPECT_TRUE(
      noc.transfer_ex(scc::CoreId{0}, scc::CoreId{10}, 64, 2'500'000).delivered);
}

TEST(NocFaults, DelayFaultAddsBoundedLatency) {
  scc::NocModel clean;
  const auto baseline = clean.transfer_ex(scc::CoreId{0}, scc::CoreId{10}, 64, 0);

  scc::NocModel noc;
  noc.inject_faults({.chunk_delay_probability = 1.0,
                     .delay_min_ns = 10'000,
                     .delay_max_ns = 20'000});
  const auto outcome = noc.transfer_ex(scc::CoreId{0}, scc::CoreId{10}, 64, 0);
  ASSERT_TRUE(outcome.delivered);
  EXPECT_GE(outcome.arrival, baseline.arrival + 10'000);
  EXPECT_LE(outcome.arrival, baseline.arrival + 20'000);
  EXPECT_EQ(noc.chunks_delayed(), 1u);
}

TEST(NocFaults, ClearFaultsRestoresCleanTransfers) {
  scc::NocModel noc;
  noc.inject_faults({.chunk_drop_probability = 1.0, .max_retries = 0});
  ASSERT_FALSE(noc.transfer_ex(scc::CoreId{0}, scc::CoreId{10}, 64, 0).delivered);
  noc.clear_faults();
  EXPECT_TRUE(noc.transfer_ex(scc::CoreId{0}, scc::CoreId{10}, 64, 0).delivered);
  EXPECT_FALSE(noc.faults_active(0));
}

TEST(NocFaults, InvalidPlanViolatesContract) {
  scc::NocModel noc;
  EXPECT_THROW(noc.inject_faults({.chunk_drop_probability = 1.5}),
               util::ContractViolation);
  EXPECT_THROW(noc.inject_faults({.max_retries = -1}), util::ContractViolation);
  EXPECT_THROW(noc.inject_faults({.window_start = 10, .window_end = 5}),
               util::ContractViolation);
}

TEST(NocFaults, LostTokensAreDroppedNotDeliveredLate) {
  // A FifoChannel with a faulty link drops lost tokens instead of handing
  // the reader a token that never arrived.
  sim::Simulator simulator;
  scc::NocModel noc;
  noc.inject_faults({.chunk_drop_probability = 1.0, .max_retries = 1});
  kpn::FifoChannel channel(
      simulator, "lossy", 8,
      kpn::FifoChannel::LinkModel{&noc, scc::CoreId{0}, scc::CoreId{10}});
  ASSERT_TRUE(channel.try_write(kpn::Token(std::vector<std::uint8_t>{1}, 0, 0)));
  EXPECT_FALSE(channel.try_read().has_value());
  EXPECT_EQ(channel.stats().tokens_dropped, 1u);
  EXPECT_EQ(channel.stats().tokens_written, 1u);
}

// ---- campaign contracts ---------------------------------------------------

TEST(FaultCampaign, AddAfterArmViolatesContract) {
  Rig rig;
  FaultCampaign campaign(rig.simulator, rig.wiring());
  campaign.arm();
  EXPECT_THROW(campaign.add({.kind = FaultKind::kPermanentSilence}),
               util::ContractViolation);
}

TEST(FaultCampaign, SpecValidationRejectsNonsense) {
  Rig rig;
  FaultCampaign campaign(rig.simulator, rig.wiring());
  EXPECT_THROW(campaign.add({.kind = FaultKind::kTransientSilence, .duration = 0}),
               util::ContractViolation);
  EXPECT_THROW(campaign.add({.kind = FaultKind::kIntermittentSilence,
                             .duration = rtc::from_ms(100.0),
                             .burst_on_mean = 0}),
               util::ContractViolation);
  EXPECT_THROW(campaign.add({.kind = FaultKind::kRateDegradation, .rate_factor = 1.0}),
               util::ContractViolation);
  EXPECT_THROW(campaign.add({.kind = FaultKind::kPayloadCorruption,
                             .corrupt_probability = 0.0}),
               util::ContractViolation);
  EXPECT_THROW(campaign.add({.kind = FaultKind::kNocLink}),  // no NoC wired
               util::ContractViolation);
  // Control-plane kinds need their targets wired.
  EXPECT_THROW(campaign.add({.kind = FaultKind::kSupervisorHang}),
               util::ContractViolation);
  EXPECT_THROW(campaign.add({.kind = FaultKind::kCounterCorruption}),
               util::ContractViolation);
  EXPECT_THROW(campaign.add({.kind = FaultKind::kTraceSinkStuck}),
               util::ContractViolation);
}

// ---- text serialization (the chaos artifact / replay format) --------------

FaultSpec sample_spec(FaultKind kind) {
  FaultSpec spec;
  spec.kind = kind;
  spec.replica = ReplicaIndex::kReplica2;
  spec.at = rtc::from_ms(312.5);
  spec.duration = rtc::from_ms(87.25);
  spec.rate_factor = 3.6180339887498949;
  spec.corrupt_probability = 0.33333333333333331;
  spec.burst_on_mean = rtc::from_ms(31.0);
  spec.burst_off_mean = rtc::from_ms(153.0);
  spec.seed = 0xDEADBEEFCAFEBABEull;
  spec.noc.chunk_drop_probability = 0.125;
  spec.noc.chunk_delay_probability = 0.0625;
  spec.noc.delay_min_ns = 1'000;
  spec.noc.delay_max_ns = 9'000;
  spec.noc.max_retries = 5;
  spec.noc.retry_timeout_ns = 75'000;
  spec.tile = 5;
  return spec;
}

void expect_specs_equal(const FaultSpec& a, const FaultSpec& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.replica, b.replica);
  EXPECT_EQ(a.at, b.at);
  EXPECT_EQ(a.duration, b.duration);
  EXPECT_EQ(a.rate_factor, b.rate_factor);
  EXPECT_EQ(a.corrupt_probability, b.corrupt_probability);
  EXPECT_EQ(a.burst_on_mean, b.burst_on_mean);
  EXPECT_EQ(a.burst_off_mean, b.burst_off_mean);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.noc.chunk_drop_probability, b.noc.chunk_drop_probability);
  EXPECT_EQ(a.noc.chunk_delay_probability, b.noc.chunk_delay_probability);
  EXPECT_EQ(a.noc.delay_min_ns, b.noc.delay_min_ns);
  EXPECT_EQ(a.noc.delay_max_ns, b.noc.delay_max_ns);
  EXPECT_EQ(a.noc.max_retries, b.noc.max_retries);
  EXPECT_EQ(a.noc.retry_timeout_ns, b.noc.retry_timeout_ns);
  EXPECT_EQ(a.tile, b.tile);
}

TEST(FaultPlanText, SpecRoundTripsEveryKindFieldByField) {
  for (const FaultKind kind :
       {FaultKind::kPermanentSilence, FaultKind::kTransientSilence,
        FaultKind::kIntermittentSilence, FaultKind::kRateDegradation,
        FaultKind::kPayloadCorruption, FaultKind::kNocLink,
        FaultKind::kSupervisorHang, FaultKind::kCounterCorruption,
        FaultKind::kTraceSinkStuck}) {
    const FaultSpec spec = sample_spec(kind);
    expect_specs_equal(spec, parse_fault_spec(serialize(spec)));
  }
}

TEST(FaultPlanText, PlanRoundTripsWithCommentsAndBlanksSkipped) {
  std::vector<FaultSpec> plan;
  plan.push_back(sample_spec(FaultKind::kTransientSilence));
  plan.push_back(sample_spec(FaultKind::kPayloadCorruption));
  plan.push_back(sample_spec(FaultKind::kNocLink));
  const std::string text =
      "# a comment\n\n" + serialize(plan) + "   \n# trailing comment\n";
  const std::vector<FaultSpec> parsed = parse_fault_plan(text);
  ASSERT_EQ(parsed.size(), plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    expect_specs_equal(plan[i], parsed[i]);
  }
}

TEST(FaultPlanText, KindTagRoundTripsAndRejectsUnknown) {
  for (const FaultKind kind :
       {FaultKind::kPermanentSilence, FaultKind::kTransientSilence,
        FaultKind::kIntermittentSilence, FaultKind::kRateDegradation,
        FaultKind::kPayloadCorruption, FaultKind::kNocLink,
        FaultKind::kSupervisorHang, FaultKind::kCounterCorruption,
        FaultKind::kTraceSinkStuck}) {
    EXPECT_EQ(fault_kind_from_text(to_string(kind)), kind);
  }
  EXPECT_THROW((void)fault_kind_from_text("meteor-strike"), util::ContractViolation);
  EXPECT_THROW((void)fault_kind_from_text(""), util::ContractViolation);
  // Near-miss tags for the control-plane kinds must not fuzzy-match.
  EXPECT_THROW((void)fault_kind_from_text("supervisor-hung"), util::ContractViolation);
  EXPECT_THROW((void)fault_kind_from_text("counter-corrupt"), util::ContractViolation);
  EXPECT_THROW((void)fault_kind_from_text("trace-sink"), util::ContractViolation);
}

TEST(FaultPlanText, MalformedLinesThrowNeverCrash) {
  const std::string good = serialize(sample_spec(FaultKind::kTransientSilence));
  // Dropping the trailing tile field leaves a legacy 16-token line, which
  // stays parseable (tile defaults to 0); dropping one more field must throw.
  const std::string legacy = good.substr(0, good.rfind(' '));
  EXPECT_EQ(parse_fault_spec(legacy).tile, 0);
  // Fuzz-style line mutations: truncations, extra fields, garbage tokens.
  const std::vector<std::string> bad = {
      "",                                  // empty
      "fault",                             // tag only
      good + " 7",                         // extra field
      legacy.substr(0, legacy.rfind(' ')), // two fields short
      "tluaf" + good.substr(5),            // wrong tag
      "fault bogus-kind 1 0 0 1 1 0 0 1 0 0 0 0 3 50000",  // unknown kind
      "fault transient-silence 3 0 1 1 1 0 0 1 0 0 0 0 3 50000",  // replica 3
      "fault transient-silence 1 -5 1 1 1 0 0 1 0 0 0 0 3 50000",  // at < 0
      "fault transient-silence 1 0 0 1 1 0 0 1 0 0 0 0 3 50000",   // dur = 0
      "fault rate-degradation 1 0 0 1.0 1 0 0 1 0 0 0 0 3 50000",  // rate <= 1
      "fault payload-corruption 1 0 0 1 1.5 0 0 1 0 0 0 0 3 50000",  // p > 1
      "fault payload-corruption 1 0 0 1 nan 0 0 1 0 0 0 0 3 50000",  // not finite
      "fault intermittent-silence 1 0 9 1 1 0 0 1 0 0 0 0 3 50000",  // no bursts
      "fault transient-silence 1 0 1e99x 1 1 0 0 1 0 0 0 0 3 50000",  // garbage int
      "fault transient-silence 1 0 1 1 1 0 0 -1 0 0 0 0 3 50000",   // negative seed
      "fault noc-link 1 0 0 1 1 0 0 1 0.5 0 9000 1000 3 50000",     // max < min
      // Control-plane fuzz: unknown tags and out-of-range tile ids.
      "fault watchdog-reset 1 0 0 1 1 0 0 1 0 0 0 0 3 50000 0",     // unknown kind
      "fault supervisor-hang 1 0 0 1 1 0 0 1 0 0 0 0 3 50000 24",   // tile >= 24
      "fault supervisor-hang 1 0 0 1 1 0 0 1 0 0 0 0 3 50000 -1",   // tile < 0
      "fault trace-sink-stuck 1 0 0 1 1 0 0 1 0 0 0 0 3 50000 999", // tile absurd
      "fault counter-corruption 1 0 0 1 1 0 0 1 0 0 0 0 3 50000 x", // garbage tile
  };
  for (const std::string& line : bad) {
    EXPECT_THROW((void)parse_fault_spec(line), util::ContractViolation) << line;
  }
  // A malformed line poisons the whole plan.
  EXPECT_THROW((void)parse_fault_plan(good + "\nfault junk\n"), util::ContractViolation);
}

TEST(FaultPlanText, AbsurdLineCountsAreRejected) {
  std::string text;
  for (int i = 0; i < 10'001; ++i) text += "\n";
  EXPECT_THROW((void)parse_fault_plan(text), util::ContractViolation);
}

}  // namespace
}  // namespace sccft::ft
