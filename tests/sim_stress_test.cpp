// Simulator stress & determinism tests: large event volumes, deep coroutine
// pipelines, and bit-identical reruns.
#include <gtest/gtest.h>

#include <vector>

#include "kpn/network.hpp"
#include "kpn/process.hpp"
#include "sim/simulator.hpp"
#include "util/crc32.hpp"
#include "util/rng.hpp"

namespace sccft::sim {
namespace {

TEST(SimStress, MillionEventsInOrder) {
  Simulator sim;
  util::Xoshiro256 rng(42);
  rtc::TimeNs last_seen = -1;
  bool ordered = true;
  for (int i = 0; i < 1'000'000; ++i) {
    const rtc::TimeNs at = rng.uniform_int(0, 10'000'000);
    sim.schedule_at(at, [&, at] {
      if (at < last_seen) ordered = false;
      last_seen = at;
    });
  }
  sim.run();
  EXPECT_TRUE(ordered);
  EXPECT_EQ(sim.events_processed(), 1'000'000u);
}

TEST(SimStress, DeepPipelineOfCoroutines) {
  // 20 processes chained through 19 FIFOs; 500 tokens flow end to end.
  Simulator sim;
  kpn::Network net(sim);
  constexpr int kStages = 20;
  std::vector<kpn::FifoChannel*> fifos;
  for (int i = 0; i + 1 < kStages; ++i) {
    fifos.push_back(&net.add_fifo("f" + std::to_string(i), 4));
  }
  net.add_process("head", scc::CoreId{0}, 1,
                  [&](kpn::ProcessContext& ctx) -> sim::Task {
                    for (std::uint64_t k = 0; k < 500; ++k) {
                      std::vector<std::uint8_t> payload{static_cast<std::uint8_t>(k)};
                      co_await kpn::write(*fifos[0],
                                          kpn::Token(std::move(payload), k, ctx.now()));
                      co_await ctx.delay(100);
                    }
                  });
  for (int i = 1; i + 1 < kStages; ++i) {
    net.add_process("mid" + std::to_string(i), scc::CoreId{2 * (i % 23)},
                    static_cast<std::uint64_t>(i) + 10,
                    [&, i](kpn::ProcessContext& ctx) -> sim::Task {
                      while (true) {
                        kpn::Token token = co_await kpn::read(*fifos[static_cast<std::size_t>(i - 1)]);
                        co_await ctx.delay(10);
                        co_await kpn::write(*fifos[static_cast<std::size_t>(i)], token);
                      }
                    });
  }
  std::uint64_t received = 0;
  bool in_order = true;
  net.add_process("tail", scc::CoreId{46}, 99,
                  [&](kpn::ProcessContext&) -> sim::Task {
                    std::uint64_t expected = 0;
                    while (true) {
                      kpn::Token token =
                          co_await kpn::read(*fifos[kStages - 2]);
                      if (token.seq() != expected) in_order = false;
                      ++expected;
                      ++received;
                    }
                  });
  net.run_until(1'000'000);
  EXPECT_EQ(received, 500u);
  EXPECT_TRUE(in_order);
}

TEST(SimStress, RerunsBitIdentical) {
  // The whole-run event schedule digests to the same CRC across reruns.
  auto run_once = [] {
    Simulator sim;
    util::Xoshiro256 rng(7);
    std::vector<std::uint8_t> digest;
    std::function<void(int)> chain = [&](int depth) {
      digest.push_back(static_cast<std::uint8_t>(sim.now() & 0xFF));
      if (depth < 2'000) {
        sim.schedule_after(rng.uniform_int(1, 1'000), [&, depth] { chain(depth + 1); });
      }
    };
    sim.schedule_at(0, [&] { chain(0); });
    sim.run();
    return util::crc32(digest);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
}

TEST(SimStress, ManyProcessesManyChannels) {
  // 24 independent producer/consumer pairs (one per tile) run concurrently.
  Simulator sim;
  kpn::Network net(sim);
  std::vector<std::uint64_t> counts(24, 0);
  for (int pair = 0; pair < 24; ++pair) {
    auto& fifo = net.add_fifo("p" + std::to_string(pair), 2);
    net.add_process("w" + std::to_string(pair), scc::CoreId{2 * pair},
                    static_cast<std::uint64_t>(pair) * 2 + 1,
                    [&, pair](kpn::ProcessContext& ctx) -> sim::Task {
                      for (std::uint64_t k = 0;; ++k) {
                        std::vector<std::uint8_t> payload{static_cast<std::uint8_t>(pair)};
                        co_await kpn::write(fifo, kpn::Token(std::move(payload), k, ctx.now()));
                        co_await ctx.delay(1'000 + pair * 7);
                      }
                    });
    net.add_process("r" + std::to_string(pair), scc::CoreId{2 * pair + 1},
                    static_cast<std::uint64_t>(pair) * 2 + 2,
                    [&, pair](kpn::ProcessContext&) -> sim::Task {
                      while (true) {
                        (void)co_await kpn::read(fifo);
                        ++counts[static_cast<std::size_t>(pair)];
                      }
                    });
  }
  net.run_until(1'000'000);
  for (int pair = 0; pair < 24; ++pair) {
    EXPECT_GT(counts[static_cast<std::size_t>(pair)], 800u) << "pair " << pair;
  }
}

}  // namespace
}  // namespace sccft::sim
