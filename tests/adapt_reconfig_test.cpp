// Live-resize protocol tests (src/adapt/reconfig.hpp).
//
// Property layer: randomized interleavings of producer writes, replica pumps,
// consumer reads, and reconfiguration requests fired at arbitrary points —
// mid-burst, back-to-back, while a window is already open. The oracle is the
// paper's own: the consumed stream is exactly 0, 1, 2, ... (no gap, no
// duplicate, no reorder) and no detection rule ever fires on a legal
// schedule, no matter where a resize lands.
//
// Protocol layer: scripted windows pin the quiesce -> resize -> resume
// sequencing — busy rejection, clamped shrinks (fill+1 / gap+1), rejoin
// frontier holds surviving a window, and TMR scrubbing of the pending words.
//
// Chaos layer: full-system runs (src/chaos) with periodic benign windows —
// fault-free runs must deliver the same stream as their window-matched
// golden and a prefix of the unresized golden; lossless storms must stay
// green under the no-loss/ordering oracles; the reconfiguration-window
// adversarial template (storm template 7) is pinned as an exact-plan
// regression so generator drift cannot silently retire the coverage.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "adapt/reconfig.hpp"
#include "chaos/artifact.hpp"
#include "chaos/oracle.hpp"
#include "chaos/runner.hpp"
#include "chaos/storm.hpp"
#include "ft/fault_plan.hpp"
#include "ft/replicator.hpp"
#include "ft/selector.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace sccft::adapt {
namespace {

using ft::ReplicaIndex;
using kpn::Token;

Token make_token(std::uint64_t seq) {
  return Token(std::vector<std::uint8_t>{static_cast<std::uint8_t>(seq & 0xFF),
                                         static_cast<std::uint8_t>((seq >> 8) & 0xFF)},
               seq, 0);
}

/// One replicator/selector pair under a controller, with the manual
/// write/read interfaces the property driver pokes.
struct Rig {
  sim::Simulator sim;
  ft::ReplicatorChannel rep;
  ft::SelectorChannel sel;
  ReconfigurationController rc;

  Rig(rtc::Tokens fifo1, rtc::Tokens fifo2, rtc::Tokens divergence,
      rtc::TimeNs quiesce)
      : rep(sim, "rep", {.capacity1 = fifo1, .capacity2 = fifo2}),
        sel(sim, "sel",
            {.capacity1 = 12,
             .capacity2 = 12,
             // Eq. (4) stall budget: a replica may trail the consumer by up
             // to 5 tokens before rule (a) convicts it.
             .initial1 = 5,
             .initial2 = 5,
             .divergence_threshold = divergence,
             .enable_stall_rule = true}),
        rc(sim, sim.trace(), rep, sel,
           {.quiesce_window = quiesce, .name = "rc"}) {}

  [[nodiscard]] bool any_fault() const {
    return rep.fault(ReplicaIndex::kReplica1) || rep.fault(ReplicaIndex::kReplica2) ||
           sel.fault(ReplicaIndex::kReplica1) || sel.fault(ReplicaIndex::kReplica2);
  }
};

// The smallest divergence threshold any random request installs; the legal
// schedule keeps the replicas' write gap strictly below it so no resize can
// clamp the rig into a verdict.
constexpr rtc::Tokens kMinD = 3;

class ReconfigRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReconfigRandomized, ResizeAtRandomPointsKeepsTheStreamExact) {
  util::Xoshiro256 rng(GetParam());
  Rig rig(/*fifo1=*/2, /*fifo2=*/4, /*divergence=*/4, /*quiesce=*/500'000);
  auto& read1 = rig.rep.read_interface(ReplicaIndex::kReplica1);
  auto& read2 = rig.rep.read_interface(ReplicaIndex::kReplica2);
  auto& write1 = rig.sel.write_interface(ReplicaIndex::kReplica1);
  auto& write2 = rig.sel.write_interface(ReplicaIndex::kReplica2);

  std::uint64_t produced = 0;
  std::uint64_t pumped1 = 0;
  std::uint64_t pumped2 = 0;
  std::uint64_t consumed = 0;
  // In-flight token per replica: read from the replicator but not yet
  // accepted by the selector (a refused selector write must not lose it).
  std::optional<Token> hold1;
  std::optional<Token> hold2;
  std::uint64_t requested = 0;
  std::uint64_t rejected = 0;
  rtc::TimeNs t = 0;

  const auto pump = [&](kpn::TokenSource& from, kpn::TokenSink& to,
                        std::optional<Token>& hold, std::uint64_t& pumped,
                        std::uint64_t peer_pumped) {
    // A conforming replica never leads its peer by D - 1 or more.
    if (pumped + 1 >= peer_pumped + kMinD) return;
    if (!hold) hold = from.try_read();
    if (hold && to.try_write(*hold)) {
      hold.reset();
      ++pumped;
    }
  };

  for (int step = 0; step < 4000; ++step) {
    switch (rng.uniform_int(0, 4)) {
      case 0: {
        // Producer: a write into a full queue is the overflow rule's trigger
        // (immediately outside a window, via the deferred end-of-window check
        // inside one) — a legal producer paces itself at all times. Window
        // over-capacity absorption is exercised by the chaos-layer tests,
        // where the soak runner pairs every window with grow targets.
        const bool space =
            rig.rep.fill(ReplicaIndex::kReplica1) < rig.rep.capacity(ReplicaIndex::kReplica1) &&
            rig.rep.fill(ReplicaIndex::kReplica2) < rig.rep.capacity(ReplicaIndex::kReplica2);
        if (space) {
          if (rig.rep.try_write(make_token(produced))) ++produced;
        }
        break;
      }
      case 1:
        pump(read1, write1, hold1, pumped1, pumped2);
        break;
      case 2:
        pump(read2, write2, hold2, pumped2, pumped1);
        break;
      case 3:
        // Consumer: reading past a replica's deliveries is the stall rule's
        // trigger — a legal consumer stays behind both replicas.
        if (std::min(pumped1, pumped2) > consumed) {
          if (auto token = rig.sel.try_read()) {
            ASSERT_EQ(token->seq(), consumed)
                << "gap/duplicate/reorder at step " << step << " (seed "
                << GetParam() << ")";
            ++consumed;
          }
        }
        break;
      case 4:
        if (!rig.rc.window_open() && rng.chance(0.25)) {
          ReconfigurationController::Request request;
          if (rng.chance(0.7)) request.fifo1 = 1 + rng.uniform_int(0, 9);
          if (rng.chance(0.7)) request.fifo2 = 1 + rng.uniform_int(0, 9);
          if (rng.chance(0.7)) request.divergence = kMinD + rng.uniform_int(0, 9);
          if (!request.empty()) {
            ASSERT_TRUE(rig.rc.request(request));
            ++requested;
          }
        } else if (rig.rc.window_open()) {
          // A second request while the window is open is rejected, never
          // queued.
          ReconfigurationController::Request request;
          request.fifo1 = 5;
          ASSERT_FALSE(rig.rc.request(request));
          ++rejected;
        }
        break;
    }
    if (rng.chance(0.5)) {
      t += rng.uniform_int(0, 200'000);
      rig.sim.run_until(t);
    }
    // Note: fill may transiently exceed a queue's capacity after a window —
    // the deque absorbs over-capacity demand while the overflow rule is
    // suspended, and a queue whose capacity was not a resize target keeps
    // its old size. The binding invariants are no conviction and no loss.
    ASSERT_FALSE(rig.any_fault()) << "false conviction at step " << step
                                  << " (seed " << GetParam() << ")";
  }

  // Close any window still open, then drain everything that was produced.
  t += 1'000'000;
  rig.sim.run_until(t);
  EXPECT_FALSE(rig.rc.window_open());
  for (int spin = 0; consumed < produced && spin < 100000; ++spin) {
    pump(read1, write1, hold1, pumped1, pumped2);
    pump(read2, write2, hold2, pumped2, pumped1);
    if (std::min(pumped1, pumped2) > consumed) {
      if (auto token = rig.sel.try_read()) {
        ASSERT_EQ(token->seq(), consumed);
        ++consumed;
      }
    }
  }
  EXPECT_EQ(consumed, produced) << "tokens lost across resizes (seed "
                                << GetParam() << ")";
  EXPECT_FALSE(rig.any_fault());
  EXPECT_EQ(rig.rc.stats().windows_opened, requested);
  EXPECT_EQ(rig.rc.stats().windows_completed, requested);
  EXPECT_EQ(rig.rc.stats().rejected_busy, rejected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReconfigRandomized,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// --- scripted protocol sequencing ------------------------------------------

TEST(ReconfigProtocol, BackToBackWindowsApplyInRequestOrder) {
  Rig rig(2, 4, 5, /*quiesce=*/1'000'000);
  EXPECT_TRUE(rig.rc.request({.fifo1 = 6}));
  EXPECT_TRUE(rig.rc.window_open());
  EXPECT_FALSE(rig.rc.request({.fifo1 = 9}));  // busy
  rig.sim.run_until(1'000'000);
  EXPECT_FALSE(rig.rc.window_open());
  EXPECT_EQ(rig.rc.fifo1(), 6);
  EXPECT_EQ(rig.rc.fifo2(), 4);

  // Back-to-back: a new window opening at the very instant the last closed.
  EXPECT_TRUE(rig.rc.request({.fifo1 = 3, .divergence = 9}));
  rig.sim.run_until(2'000'000);
  EXPECT_EQ(rig.rc.fifo1(), 3);
  EXPECT_EQ(rig.rc.divergence(), 9);
  EXPECT_EQ(rig.rc.stats().windows_opened, 2u);
  EXPECT_EQ(rig.rc.stats().windows_completed, 2u);
  EXPECT_EQ(rig.rc.stats().targets_applied, 3u);
  EXPECT_EQ(rig.rc.stats().rejected_busy, 1u);
  EXPECT_EQ(rig.rc.stats().clamped, 0u);
  EXPECT_FALSE(rig.any_fault());
}

TEST(ReconfigProtocol, ShrinkClampsAtLiveOccupancy) {
  Rig rig(4, 4, 5, /*quiesce=*/1'000'000);
  for (std::uint64_t seq = 0; seq < 3; ++seq) {
    ASSERT_TRUE(rig.rep.try_write(make_token(seq)));
  }
  ASSERT_EQ(rig.rep.fill(ReplicaIndex::kReplica1), 3);

  // Shrinking to 1 with 3 tokens in flight must clamp to fill + 1, convict
  // nothing, and count the adjustment.
  EXPECT_TRUE(rig.rc.request({.fifo1 = 1, .fifo2 = 1}));
  rig.sim.run_until(1'000'000);
  EXPECT_EQ(rig.rc.fifo1(), 4);
  EXPECT_EQ(rig.rc.fifo2(), 4);
  EXPECT_EQ(rig.rc.stats().clamped, 2u);
  EXPECT_FALSE(rig.any_fault());

  // Once the queues drain, the same shrink goes through unclamped.
  auto& read1 = rig.rep.read_interface(ReplicaIndex::kReplica1);
  auto& read2 = rig.rep.read_interface(ReplicaIndex::kReplica2);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(read1.try_read().has_value());
    ASSERT_TRUE(read2.try_read().has_value());
  }
  EXPECT_TRUE(rig.rc.request({.fifo1 = 1, .fifo2 = 1}));
  rig.sim.run_until(2'000'000);
  EXPECT_EQ(rig.rc.fifo1(), 1);
  EXPECT_EQ(rig.rc.fifo2(), 1);
  EXPECT_EQ(rig.rc.stats().clamped, 2u);
}

TEST(ReconfigProtocol, NarrowingDivergenceClampsAtTheLiveGap) {
  Rig rig(8, 8, 5, /*quiesce=*/1'000'000);
  auto& write1 = rig.sel.write_interface(ReplicaIndex::kReplica1);
  for (std::uint64_t seq = 0; seq < 3; ++seq) {
    ASSERT_TRUE(write1.try_write(make_token(seq)));
  }
  ASSERT_EQ(rig.rc.divergence_gap(), 3);

  EXPECT_TRUE(rig.rc.request({.divergence = 2}));
  rig.sim.run_until(1'000'000);
  // gap + 1 = 4: legal, zero slack, and no retroactive conviction.
  EXPECT_EQ(rig.rc.divergence(), 4);
  EXPECT_EQ(rig.rc.stats().clamped, 1u);
  EXPECT_FALSE(rig.any_fault());
}

TEST(ReconfigProtocol, WindowDuringRejoinFrontierHoldKeepsTheWriterHeld) {
  Rig rig(8, 8, 8, /*quiesce=*/1'000'000);
  auto& write1 = rig.sel.write_interface(ReplicaIndex::kReplica1);
  auto& write2 = rig.sel.write_interface(ReplicaIndex::kReplica2);
  for (std::uint64_t seq = 0; seq < 3; ++seq) {
    ASSERT_TRUE(write2.try_write(make_token(seq)));
  }

  // Replica 1 rejoins after recovery; its pipeline restarts ahead of the
  // delivered frontier (peer last delivered seq 2, so the frontier is 3).
  rig.sel.reintegrate(ReplicaIndex::kReplica1);
  EXPECT_FALSE(write1.try_write(make_token(5)));  // ahead: held

  // Re-anchoring is deferred across a reconfiguration window: even the
  // frontier token stays held until the window closes.
  EXPECT_TRUE(rig.rc.request({.divergence = 12}));
  EXPECT_FALSE(write1.try_write(make_token(3)));
  rig.sim.run_until(1'000'000);
  EXPECT_FALSE(rig.rc.window_open());

  // After resume the frontier write re-anchors and is accepted.
  EXPECT_TRUE(write1.try_write(make_token(3)));
  for (std::uint64_t expected = 0; expected < 4; ++expected) {
    auto token = rig.sel.try_read();
    ASSERT_TRUE(token.has_value());
    EXPECT_EQ(token->seq(), expected);
  }
  EXPECT_FALSE(rig.any_fault());
}

TEST(ReconfigProtocol, PendingTargetsSurviveASingleCopyCorruption) {
  Rig rig(2, 4, 5, /*quiesce=*/1'000'000);
  EXPECT_TRUE(rig.rc.request({.fifo1 = 7, .divergence = 9}));
  // Flip bits in one TMR copy of the pending-|F1| word while the window is
  // open; the apply phase must read the majority vote.
  rig.rc.corrupt_control_word(/*word=*/0, /*copy=*/1, /*mask=*/0xFF);
  const ft::ScrubReport report = rig.rc.scrub_control_state();
  EXPECT_EQ(report.repairs, 1);
  rig.sim.run_until(1'000'000);
  EXPECT_EQ(rig.rc.fifo1(), 7);
  EXPECT_EQ(rig.rc.divergence(), 9);
}

// --- chaos layer: full-system runs with benign periodic windows ------------

TEST(ReconfigChaos, FaultFreeWindowsDeliverTheGoldenStream) {
  chaos::ReconfigOptions reconfig;
  reconfig.enabled = true;
  const rtc::TimeNs run_length = rtc::from_ms(1500.0);
  chaos::StormPlan plan;
  plan.seed = 11;
  plan.run_length = run_length;

  chaos::RunOptions options;
  options.reconfig = reconfig;
  const chaos::RunObservation obs = chaos::run_storm(plan, options);
  ASSERT_FALSE(obs.contract_violation.has_value()) << *obs.contract_violation;
  EXPECT_GE(obs.reconfig_windows, 5u);
  EXPECT_GT(obs.reconfig_targets, 0u);

  // Window-matched golden: byte-identical stream.
  const chaos::RunObservation golden =
      chaos::run_golden(plan.seed, run_length, reconfig);
  EXPECT_EQ(obs.consumed_seqs, golden.consumed_seqs);
  EXPECT_EQ(obs.consumed_fingerprints, golden.consumed_fingerprints);
  EXPECT_TRUE(chaos::check_invariants(plan, obs, golden).empty());

  // Unresized golden: the windows may shift wake-ups (so lengths can differ
  // at the tail) but every delivered token must match, in order, bit-exact.
  const chaos::RunObservation plain = chaos::run_golden(plan.seed, run_length);
  const std::size_t common =
      std::min(obs.consumed_seqs.size(), plain.consumed_seqs.size());
  ASSERT_GT(common, 0u);
  EXPECT_TRUE(std::equal(obs.consumed_seqs.begin(),
                         obs.consumed_seqs.begin() + static_cast<std::ptrdiff_t>(common),
                         plain.consumed_seqs.begin()));
  EXPECT_TRUE(std::equal(
      obs.consumed_fingerprints.begin(),
      obs.consumed_fingerprints.begin() + static_cast<std::ptrdiff_t>(common),
      plain.consumed_fingerprints.begin()));
}

TEST(ReconfigChaos, LosslessStormsStayGreenAcrossWindows) {
  chaos::StormConfig config;
  config.run_length = rtc::from_ms(1500.0);
  config.reconfigure = true;
  const chaos::StormGenerator generator(config);

  chaos::ReconfigOptions reconfig;
  reconfig.enabled = true;
  chaos::RunOptions options;
  options.reconfig = reconfig;

  int checked = 0;
  for (std::uint64_t seed = 1; seed <= 40 && checked < 4; ++seed) {
    const chaos::StormPlan plan = generator.generate(seed);
    if (!chaos::plan_is_lossless(plan.faults)) continue;
    ++checked;
    const chaos::RunObservation obs = chaos::run_storm(plan, options);
    ASSERT_FALSE(obs.contract_violation.has_value())
        << "seed " << seed << ": " << *obs.contract_violation;
    const chaos::RunObservation golden =
        chaos::run_golden(plan.seed, plan.run_length, reconfig);
    const auto violations = chaos::check_invariants(plan, obs, golden);
    EXPECT_TRUE(violations.empty())
        << "seed " << seed << " first violation: "
        << (violations.empty() ? "" : violations.front().detail);
    EXPECT_GE(obs.reconfig_windows, 4u) << "seed " << seed;
  }
  ASSERT_EQ(checked, 4) << "not enough lossless storms in the seed range";
}

// --- storm template 7: faults inside a reconfiguration window --------------

bool in_reconfig_window(const ft::FaultSpec& fault) {
  return fault.at >= chaos::kReconfigPeriodNs &&
         fault.at % chaos::kReconfigPeriodNs < chaos::kReconfigWindowNs;
}

/// Template-7 signature: an onset pinned inside a window plus a cross-replica
/// follow-up 150-500 ms later (a random onset can land in a window by
/// coincidence — one in ~125 — so the scan for the *template* requires both).
bool is_window_template_plan(const chaos::StormPlan& plan) {
  for (std::size_t i = 0; i < plan.faults.size(); ++i) {
    if (!in_reconfig_window(plan.faults[i])) continue;
    for (std::size_t j = 0; j < plan.faults.size(); ++j) {
      const rtc::TimeNs gap = plan.faults[j].at - plan.faults[i].at;
      if (j != i && gap >= rtc::from_ms(150.0) && gap <= rtc::from_ms(500.0)) {
        return true;
      }
    }
  }
  return false;
}

constexpr std::uint64_t kPinnedSeed = 16;
constexpr const char* kPinnedPlan =
    "fault transient-silence 2 1250678429 396023900 4 1 0 0 "
    "7523731266670064322 0 0 0 0 3 50000 0\n"
    "fault rate-degradation 1 1405096062 317293248 2.5818881188254625 1 0 0 "
    "6948467965160479165 0 0 0 0 3 50000 0\n"
    "fault intermittent-silence 2 1384968827 336278876 4 1 52577666 86940570 "
    "11818542425071029415 0 0 0 0 3 50000 0\n";

TEST(ReconfigChaos, GeneratorTargetsReconfigWindowsOnlyWhenEnabled) {
  chaos::StormConfig vanilla;
  vanilla.run_length = rtc::from_ms(2000.0);
  chaos::StormConfig extended = vanilla;
  extended.reconfigure = true;
  const chaos::StormGenerator base(vanilla);
  const chaos::StormGenerator armed(extended);

  int in_window_plans = 0;
  int diverged_plans = 0;
  for (std::uint64_t seed = 1; seed <= 48; ++seed) {
    const chaos::StormPlan a = base.generate(seed);
    const chaos::StormPlan b = armed.generate(seed);
    if (ft::serialize(a.faults) != ft::serialize(b.faults)) ++diverged_plans;
    if (std::any_of(b.faults.begin(), b.faults.end(), in_reconfig_window)) {
      ++in_window_plans;
    }
  }
  // The template draw is randomized; over 48 seeds the armed generator must
  // have produced at least one onset pinned inside a window.
  EXPECT_GE(in_window_plans, 1);
  EXPECT_GE(diverged_plans, 1);
}

TEST(ReconfigChaos, PinnedWindowTemplatePlanStaysGreen) {
  // Exact-plan regression for the reconfiguration-window adversarial
  // template: the first armed seed whose storm lands a silence onset between
  // quiesce and resume. Pinned byte-for-byte — a generator change that moves
  // it must update this test deliberately.
  chaos::StormConfig config;
  config.run_length = rtc::from_ms(2000.0);
  config.reconfigure = true;
  const chaos::StormGenerator generator(config);

  std::optional<chaos::StormPlan> pinned;
  std::uint64_t pinned_seed = 0;
  for (std::uint64_t seed = 1; seed <= 48 && !pinned; ++seed) {
    chaos::StormPlan plan = generator.generate(seed);
    if (is_window_template_plan(plan)) {
      pinned = std::move(plan);
      pinned_seed = seed;
    }
  }
  ASSERT_TRUE(pinned.has_value());
  EXPECT_EQ(pinned_seed, kPinnedSeed);
  EXPECT_EQ(ft::serialize(pinned->faults), kPinnedPlan);

  // The pinned plan runs under fire: deferred detection and held-writer
  // wake-ups execute with the fault already live inside the window.
  chaos::RunOptions options;
  options.reconfig.enabled = true;
  const chaos::RunObservation obs = chaos::run_storm(*pinned, options);
  ASSERT_FALSE(obs.contract_violation.has_value()) << *obs.contract_violation;
  const chaos::RunObservation golden =
      chaos::run_golden(pinned->seed, pinned->run_length, options.reconfig);
  const auto violations = chaos::check_invariants(*pinned, obs, golden);
  EXPECT_TRUE(violations.empty())
      << "first violation: "
      << (violations.empty() ? "" : violations.front().detail);
}

// --- artifact format --------------------------------------------------------

TEST(ReconfigChaos, ArtifactRoundTripsTheReconfigureLine) {
  chaos::FailureArtifact artifact;
  artifact.seed = 42;
  artifact.run_length = rtc::from_ms(2000.0);
  artifact.reconfig.enabled = true;
  artifact.reconfig.period = rtc::from_ms(125.0);
  artifact.reconfig.quiesce_window = rtc::from_ms(3.0);
  artifact.reconfig.grow = 5;
  artifact.violations.push_back(
      chaos::Violation{chaos::ViolationCode::kContractViolation, "probe"});
  ft::FaultSpec silence;
  silence.kind = ft::FaultKind::kPermanentSilence;
  silence.replica = ReplicaIndex::kReplica1;
  silence.at = rtc::from_ms(400.0);
  artifact.plan.push_back(silence);

  const chaos::FailureArtifact parsed =
      chaos::parse_artifact(chaos::serialize(artifact));
  EXPECT_TRUE(parsed.reconfig.enabled);
  EXPECT_EQ(parsed.reconfig.period, rtc::from_ms(125.0));
  EXPECT_EQ(parsed.reconfig.quiesce_window, rtc::from_ms(3.0));
  EXPECT_EQ(parsed.reconfig.grow, 5);
  EXPECT_EQ(chaos::serialize(parsed), chaos::serialize(artifact));
}

TEST(ReconfigChaos, LegacyArtifactsWithoutTheReconfigureLineParseDisabled) {
  const std::string legacy =
      "sccft-chaos-artifact v1\n"
      "seed 3\n"
      "run-length-ns 2000000000\n"
      "planted none\n"
      "violation stalled-stream nothing was ever delivered\n"
      "plan-begin\n"
      "plan-end\n"
      "flight-begin\n"
      "flight-end\n"
      "registry-begin\n"
      "registry-end\n";
  const chaos::FailureArtifact parsed = chaos::parse_artifact(legacy);
  EXPECT_FALSE(parsed.reconfig.enabled);
  EXPECT_EQ(parsed.reconfig.period, chaos::kReconfigPeriodNs);
  EXPECT_EQ(parsed.reconfig.quiesce_window, chaos::kReconfigWindowNs);
}

}  // namespace
}  // namespace sccft::adapt
