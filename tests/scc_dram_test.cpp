// DRAM-path model tests: quadrant affinity, FCFS contention, and the
// MPB-vs-DRAM predictability comparison motivating the paper's 3 KiB policy.
#include <gtest/gtest.h>

#include "scc/dram.hpp"
#include "util/assert.hpp"

namespace sccft::scc {
namespace {

TEST(Dram, QuadrantAffinity) {
  EXPECT_EQ(controller_of(TileId::at(0, 0)), 0);
  EXPECT_EQ(controller_of(TileId::at(5, 0)), 1);
  EXPECT_EQ(controller_of(TileId::at(0, 3)), 2);
  EXPECT_EQ(controller_of(TileId::at(5, 3)), 3);
  EXPECT_EQ(controller_of(TileId::at(2, 1)), 0);
  EXPECT_EQ(controller_of(TileId::at(3, 2)), 3);
}

TEST(Dram, ControllerTilesAreCorners) {
  for (int c = 0; c < kMemoryControllerCount; ++c) {
    const TileId tile = controller_tile(c);
    EXPECT_TRUE(tile.valid());
    EXPECT_TRUE((tile.column() == 0 || tile.column() == kMeshColumns - 1) &&
                (tile.row() == 0 || tile.row() == kMeshRows - 1));
  }
  EXPECT_THROW((void)controller_tile(4), util::ContractViolation);
}

TEST(Dram, LatencyGrowsWithSize) {
  NocModel noc;
  DramModel dram(noc);
  const auto small = dram.estimate_latency(CoreId{10}, CoreId{20}, 1024);
  const auto large = dram.estimate_latency(CoreId{10}, CoreId{20}, 64 * 1024);
  EXPECT_GT(large, small);
}

TEST(Dram, SlowerThanMpbForSmallMessages) {
  // The paper's policy in one assertion: a 3 KiB message via MPB beats the
  // same message via the DRAM round trip.
  NocModel noc;
  DramModel dram(noc);
  const auto mpb = noc.estimate_latency(CoreId{10}, CoreId{20}, 3 * 1024);
  const auto via_dram = dram.estimate_latency(CoreId{10}, CoreId{20}, 3 * 1024);
  EXPECT_LT(mpb, via_dram);
}

TEST(Dram, FcfsContentionQueues) {
  NocModel noc;
  DramModel dram(noc);
  // Two same-quadrant transfers at the same instant: the second waits for
  // the controller.
  const auto first = dram.transfer(CoreId{0}, CoreId{10}, 32 * 1024, 0);
  const auto second = dram.transfer(CoreId{2}, CoreId{12}, 32 * 1024, 0);
  EXPECT_GT(second, first);
  EXPECT_GE(dram.queued_requests(), 1u);
}

TEST(Dram, DifferentQuadrantsDoNotContend) {
  NocModel noc_a;
  DramModel solo(noc_a);
  const auto alone = solo.transfer(CoreId{46}, CoreId{40}, 32 * 1024, 0);

  NocModel noc_b;
  DramModel busy(noc_b);
  // Load controller 0 heavily, then issue the same quadrant-3 transfer.
  (void)busy.transfer(CoreId{0}, CoreId{2}, 256 * 1024, 0);
  const auto after = busy.transfer(CoreId{46}, CoreId{40}, 32 * 1024, 0);
  // Controller 3's service is unaffected by controller 0's backlog; only
  // shared mesh links could differ, and these routes are disjoint.
  EXPECT_EQ(alone, after);
}

TEST(Dram, ContentionJitterDwarfsMpbJitter) {
  // Quantifies the predictability argument: the spread (max - min latency)
  // of 8 concurrent same-quadrant DRAM transfers is orders of magnitude
  // larger than the spread of the same transfers over the MPB path.
  NocModel noc_mpb;
  rtc::TimeNs mpb_min = std::numeric_limits<rtc::TimeNs>::max();
  rtc::TimeNs mpb_max = 0;
  for (int i = 0; i < 8; ++i) {
    const CoreId src{2 * i};
    const CoreId dst{2 * i + 24};
    const auto done = noc_mpb.transfer(src, dst, 3 * 1024, 0);
    mpb_min = std::min(mpb_min, done);
    mpb_max = std::max(mpb_max, done);
  }

  NocModel noc_dram;
  DramModel dram(noc_dram);
  rtc::TimeNs dram_min = std::numeric_limits<rtc::TimeNs>::max();
  rtc::TimeNs dram_max = 0;
  for (int i = 0; i < 8; ++i) {
    const CoreId src{2 * i};      // all in quadrant 0/1 -> heavy contention
    const CoreId dst{2 * i + 24};
    const auto done = dram.transfer(src, dst, 32 * 1024, 0);
    dram_min = std::min(dram_min, done);
    dram_max = std::max(dram_max, done);
  }
  EXPECT_GT(dram_max - dram_min, 4 * (mpb_max - mpb_min));
}

}  // namespace
}  // namespace sccft::scc
