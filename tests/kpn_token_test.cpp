// Token CRC self-verification and the post-stamp corruption helper.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "kpn/token.hpp"
#include "util/assert.hpp"

namespace sccft::kpn {
namespace {

Token make_token(std::vector<std::uint8_t> payload, std::uint64_t seq = 7) {
  return Token(std::move(payload), seq, 1'000);
}

TEST(Token, FreshTokenVerifies) {
  const Token token = make_token({0xDE, 0xAD, 0xBE, 0xEF});
  EXPECT_TRUE(token.verify_checksum());
}

TEST(Token, PayloadlessTokenVerifiesVacuously) {
  const Token token;
  EXPECT_FALSE(token.valid());
  EXPECT_TRUE(token.verify_checksum());
}

TEST(Token, CorruptedCopyFailsVerification) {
  const Token token = make_token({1, 2, 3, 4});
  const Token bad = token.corrupted(11);
  EXPECT_FALSE(bad.verify_checksum());
  // Metadata is carried over unchanged — only the payload bytes differ.
  EXPECT_EQ(bad.seq(), token.seq());
  EXPECT_EQ(bad.produced_at(), token.produced_at());
  EXPECT_EQ(bad.checksum(), token.checksum());
  EXPECT_EQ(bad.size_bytes(), token.size_bytes());
}

TEST(Token, CorruptionDoesNotTouchSharedPayload) {
  const Token token = make_token({10, 20, 30});
  const Token bad = token.corrupted(0);
  // The original still verifies: corrupted() copied before flipping, so the
  // replicator's shared payload (other replica, other channels) is intact.
  EXPECT_TRUE(token.verify_checksum());
  EXPECT_EQ(token.payload()[0], 10);
  EXPECT_NE(bad.payload()[0], 10);
}

TEST(Token, EverySingleBitFlipIsDetected) {
  // CRC-32 detects all single-bit errors by construction; this pins the
  // guarantee the selector's >= 99% coverage acceptance rests on.
  const Token token = make_token({0x00, 0xFF, 0x5A, 0xC3, 0x01});
  const std::size_t bits = static_cast<std::size_t>(token.size_bytes()) * 8;
  for (std::size_t bit = 0; bit < bits; ++bit) {
    EXPECT_FALSE(token.corrupted(bit).verify_checksum()) << "bit " << bit;
  }
}

TEST(Token, BitIndexWrapsAroundPayloadSize) {
  const Token token = make_token({0xAA});
  const Token a = token.corrupted(3);
  const Token b = token.corrupted(3 + 8);  // same bit after wrap-around
  EXPECT_EQ(a.payload()[0], b.payload()[0]);
  EXPECT_FALSE(a.verify_checksum());
}

TEST(Token, DoubleCorruptionOfSameBitRestoresPayloadButNotTrust) {
  const Token token = make_token({0x42, 0x24});
  const Token once = token.corrupted(5);
  const Token twice = once.corrupted(5);
  // Flipping the same bit twice restores the bytes, so the checksum matches
  // again — corruption detection is per-token, not a history.
  EXPECT_TRUE(twice.verify_checksum());
}

TEST(Token, CorruptingEmptyTokenViolatesContract) {
  const Token empty;
  EXPECT_THROW((void)empty.corrupted(0), util::ContractViolation);
}

TEST(Token, RestampedTokenStillVerifies) {
  const Token token = make_token({9, 8, 7});
  const Token restamped = token.restamped(99, 5'000);
  EXPECT_TRUE(restamped.verify_checksum());
  EXPECT_EQ(restamped.seq(), 99u);
}

}  // namespace
}  // namespace sccft::kpn
