// Fleet simulation tests (ft/fleet.hpp): deterministic materialization, the
// placement request shape, end-to-end run invariants, and the shared
// restart-budget pool.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "ft/fleet.hpp"
#include "scc/placement.hpp"
#include "scc/topology.hpp"

namespace sccft::ft {
namespace {

FleetRunOptions quick_options() {
  FleetRunOptions options;
  options.run_length = 300'000'000;  // 300 ms keeps the test fast
  options.fault_at = 80'000'000;
  options.fault_duration = 40'000'000;
  return options;
}

TEST(FleetSpec, MaterializeIsDeterministic) {
  FleetSpec spec;
  spec.streams = 8;
  spec.seed = 42;
  const auto a = spec.materialize();
  const auto b = spec.materialize();
  ASSERT_EQ(a.size(), 8u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].producer, b[i].producer);
    EXPECT_EQ(a[i].stage, b[i].stage);
    EXPECT_EQ(a[i].consumer, b[i].consumer);
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].critical, b[i].critical);
  }
}

TEST(FleetSpec, MaterializeIsPrefixStable) {
  // Growing the fleet must not perturb the streams already in it — the
  // saturation sweep compares stream counts, so stream i must mean the same
  // workload at every count.
  FleetSpec small, large;
  small.streams = 4;
  large.streams = 12;
  const auto a = small.materialize();
  const auto b = large.materialize();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].producer, b[i].producer) << "stream " << i;
    EXPECT_EQ(a[i].seed, b[i].seed) << "stream " << i;
  }
}

TEST(FleetSpec, CriticalEveryControlsDuplication) {
  FleetSpec spec;
  spec.streams = 6;
  spec.critical_every = 2;
  const auto streams = spec.materialize();
  for (const auto& s : streams) {
    EXPECT_EQ(s.critical, s.index % 2 == 0) << "stream " << s.index;
  }
  spec.critical_every = 0;
  for (const auto& s : spec.materialize()) EXPECT_FALSE(s.critical);
  spec.critical_every = 1;
  for (const auto& s : spec.materialize()) EXPECT_TRUE(s.critical);
}

TEST(FleetSpec, PlacementRequestShape) {
  FleetSpec spec;
  spec.streams = 4;
  const auto streams = spec.materialize();
  const auto request = build_placement_request(spec, streams);
  // Streams 0 and 2 critical (4 processes), 1 and 3 plain pipelines (3).
  ASSERT_EQ(request.processes.size(), 4u + 3u + 4u + 3u);
  // Each critical stream contributes exactly one anti-affine replica pair.
  std::set<int> groups;
  int group_members = 0;
  for (const auto& process : request.processes) {
    if (process.anti_affinity_group >= 0) {
      groups.insert(process.anti_affinity_group);
      ++group_members;
    }
  }
  EXPECT_EQ(groups.size(), 2u);
  EXPECT_EQ(group_members, 4);
  // Every FIFO demand is accounted in MPB bytes somewhere.
  std::size_t total_mpb = 0;
  for (const auto& process : request.processes) total_mpb += process.mpb_bytes;
  EXPECT_GT(total_mpb, 0u);
  // And the request must actually place.
  const auto placement = scc::place_fleet(request);
  EXPECT_EQ(placement.process_to_core.size(), request.processes.size());
}

TEST(Fleet, SmallRunMeetsPaperGuarantees) {
  FleetSpec spec;
  spec.streams = 4;
  const auto result = run_fleet(spec, quick_options());
  ASSERT_EQ(result.streams.size(), 4u);
  EXPECT_GT(result.events_processed, 0u);
  EXPECT_EQ(result.simulated_ns, quick_options().run_length);
  EXPECT_GE(result.tiles_used, 1);
  EXPECT_LE(result.max_tile_mpb_used,
            static_cast<std::size_t>(scc::kMpbBytesPerTile));
  for (const auto& stream : result.streams) {
    EXPECT_GT(stream.tokens_consumed, 0u) << "stream " << stream.index;
    EXPECT_GT(stream.achieved_rate_hz, 0.0) << "stream " << stream.index;
    EXPECT_FALSE(stream.sequence_gap) << "stream " << stream.index;
    EXPECT_FALSE(stream.false_conviction) << "stream " << stream.index;
    if (stream.critical) {
      // The injected silence must be caught within the Eq. (6)-(8) bound.
      EXPECT_TRUE(stream.detected) << "stream " << stream.index;
      ASSERT_TRUE(stream.detection_latency.has_value())
          << "stream " << stream.index;
      EXPECT_GT(stream.detection_bound, 0);
      EXPECT_LE(*stream.detection_latency, stream.detection_bound)
          << "stream " << stream.index;
      // Designed Eq. (3)/(5) capacities were published.
      EXPECT_GT(stream.replicator_capacity, 0u);
      EXPECT_GT(stream.selector_capacity, 0u);
    }
  }
}

TEST(Fleet, RunIsDeterministic) {
  FleetSpec spec;
  spec.streams = 4;
  spec.seed = 9;
  const auto a = run_fleet(spec, quick_options());
  const auto b = run_fleet(spec, quick_options());
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.placement_cost, b.placement_cost);
  EXPECT_EQ(a.noc_contention_stalls, b.noc_contention_stalls);
  EXPECT_EQ(a.max_link_busy_ns, b.max_link_busy_ns);
  ASSERT_EQ(a.streams.size(), b.streams.size());
  for (std::size_t i = 0; i < a.streams.size(); ++i) {
    EXPECT_EQ(a.streams[i].tokens_consumed, b.streams[i].tokens_consumed);
    EXPECT_EQ(a.streams[i].detection_latency, b.streams[i].detection_latency);
    EXPECT_EQ(a.streams[i].restarts, b.streams[i].restarts);
    EXPECT_EQ(a.streams[i].replicator_max_fill, b.streams[i].replicator_max_fill);
    EXPECT_EQ(a.streams[i].selector_max_fill, b.streams[i].selector_max_fill);
    EXPECT_EQ(a.streams[i].upper_violations, b.streams[i].upper_violations);
    EXPECT_EQ(a.streams[i].lower_violations, b.streams[i].lower_violations);
  }
}

TEST(Fleet, SharedPoolGatesRestartsAcrossStreams) {
  // Two critical streams, one shared restart token: the first detection wins
  // the restart, the second supervisor finds the pool dry and degrades its
  // replica instead of restarting it.
  FleetSpec spec;
  spec.streams = 4;  // streams 0 and 2 critical
  spec.shared_restart_budget = 1;
  const auto result = run_fleet(spec, quick_options());
  EXPECT_EQ(result.pool_capacity, 1);
  EXPECT_EQ(result.pool_used, 1);
  int restarted = 0, degraded = 0;
  for (const auto& stream : result.streams) {
    if (!stream.critical) continue;
    EXPECT_TRUE(stream.detected) << "stream " << stream.index;
    if (stream.restarts > 0) ++restarted;
    if (stream.degraded) ++degraded;
  }
  EXPECT_EQ(restarted, 1);
  EXPECT_GE(degraded, 1);

  // With an ample pool both streams restart and nothing degrades.
  spec.shared_restart_budget = 8;
  const auto rich = run_fleet(spec, quick_options());
  EXPECT_EQ(rich.pool_capacity, 8);
  for (const auto& stream : rich.streams) {
    if (stream.critical) {
      EXPECT_FALSE(stream.degraded) << stream.index;
    }
  }
}

TEST(Fleet, OversubscribedFleetThrowsPlacementError) {
  FleetSpec spec;
  spec.streams = 96;
  EXPECT_THROW((void)run_fleet(spec, quick_options()), scc::PlacementError);
}

}  // namespace
}  // namespace sccft::ft
