// Golden-fingerprint determinism pins: exact simulator event counts and
// output CRCs for one run of each campaign rig, captured on the pre-refactor
// (binary-heap + std::function) kernel. The DES-kernel rewrite must preserve
// the (time, seq) total order exactly — any silent event reorder, extra wake,
// or dropped schedule shows up here as a changed event count or stream CRC
// long before the (slower) campaign-determinism CI lane runs.
//
// The pinned values are part of the kernel's compatibility contract: a PR
// that changes them is changing simulation semantics and must say so.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "apps/adpcm/app.hpp"
#include "apps/common/experiment.hpp"
#include "chaos/runner.hpp"
#include "chaos/storm.hpp"
#include "util/crc32.hpp"

namespace sccft {
namespace {

/// Folds a vector of integers into a running CRC-32, little-endian per value,
/// so stream fingerprints are one number per run.
template <typename T>
std::uint32_t crc_fold(const std::vector<T>& values, std::uint32_t seed = 0) {
  std::uint32_t crc = seed;
  for (const T& value : values) {
    std::uint8_t bytes[sizeof(T)];
    auto v = static_cast<std::uint64_t>(value);
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      bytes[i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
    crc = util::crc32(std::span<const std::uint8_t>(bytes, sizeof(T)), crc);
  }
  return crc;
}

TEST(Fingerprint, Table2AdpcmFaultFreeRun) {
  apps::ExperimentRunner runner(apps::adpcm::make_application());
  apps::ExperimentOptions options;
  options.seed = 1;
  options.run_periods = 240;
  const auto result = runner.run(options);

  EXPECT_EQ(result.events_processed, 2694u);
  EXPECT_EQ(result.consumer_tokens, 239u);
  EXPECT_EQ(crc_fold(result.output_checksums), 1353322099u);
}

TEST(Fingerprint, FaultCampaignSilenceRun) {
  apps::ExperimentRunner runner(apps::adpcm::make_application());
  apps::ExperimentOptions options;
  options.seed = 1;
  options.run_periods = 240;
  options.fault_after_periods = 150;
  options.inject_fault = true;
  options.faulty_replica = ft::ReplicaIndex::kReplica1;
  options.fault_mode = ft::FaultMode::kSilence;
  const auto result = runner.run(options);

  EXPECT_TRUE(result.any_detection);
  EXPECT_FALSE(result.false_positive);
  EXPECT_EQ(result.events_processed, 2257u);
  EXPECT_EQ(result.consumer_tokens, 239u);
  // The healthy replica covers the stream: same output as the fault-free run.
  EXPECT_EQ(crc_fold(result.output_checksums), 1353322099u);
}

TEST(Fingerprint, ChaosStormRun) {
  chaos::StormGenerator generator;
  const chaos::StormPlan plan = generator.generate(1);
  const chaos::RunObservation obs = chaos::run_storm(plan);

  ASSERT_FALSE(obs.contract_violation.has_value());
  EXPECT_EQ(obs.events_processed, 1253u);
  EXPECT_EQ(obs.consumed_seqs.size(), 199u);
  EXPECT_EQ(crc_fold(obs.consumed_seqs), 912480545u);
  EXPECT_EQ(crc_fold(obs.consumed_fingerprints), 1813323357u);
}

}  // namespace
}  // namespace sccft
