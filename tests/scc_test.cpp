// SCC platform model tests: topology, XY routing, NoC latency/contention,
// low-contention mapping, clock synchronization.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "scc/mapping.hpp"
#include "scc/messaging.hpp"
#include "scc/noc.hpp"
#include "scc/platform.hpp"
#include "scc/topology.hpp"
#include "util/assert.hpp"

namespace sccft::scc {
namespace {

TEST(Topology, Dimensions) {
  EXPECT_EQ(kTileCount, 24);
  EXPECT_EQ(kCoreCount, 48);
  EXPECT_EQ(TileId::at(5, 3).value, 23);
  EXPECT_EQ(CoreId{47}.tile().value, 23);
  EXPECT_EQ(CoreId{47}.local_index(), 1);
}

TEST(Topology, HopCountIsManhattan) {
  EXPECT_EQ(hop_count(TileId::at(0, 0), TileId::at(0, 0)), 0);
  EXPECT_EQ(hop_count(TileId::at(0, 0), TileId::at(5, 3)), 8);
  EXPECT_EQ(hop_count(TileId::at(2, 1), TileId::at(4, 1)), 2);
}

TEST(Topology, XyRouteGoesXThenY) {
  const auto route = xy_route(TileId::at(1, 1), TileId::at(3, 3));
  ASSERT_EQ(route.size(), 5u);  // 2 x-hops + 2 y-hops + origin
  EXPECT_EQ(route[0], TileId::at(1, 1));
  EXPECT_EQ(route[1], TileId::at(2, 1));
  EXPECT_EQ(route[2], TileId::at(3, 1));
  EXPECT_EQ(route[3], TileId::at(3, 2));
  EXPECT_EQ(route[4], TileId::at(3, 3));
}

TEST(Topology, LinkIndexUniquePerDirectedLink) {
  std::vector<int> seen;
  for (int t = 0; t < kTileCount; ++t) {
    const TileId from{t};
    for (const auto& [dc, dr] : {std::pair{1, 0}, {-1, 0}, {0, 1}, {0, -1}}) {
      const int col = from.column() + dc;
      const int row = from.row() + dr;
      if (col < 0 || col >= kMeshColumns || row < 0 || row >= kMeshRows) continue;
      const int idx = link_index(Link{from, TileId::at(col, row)});
      EXPECT_GE(idx, 0);
      EXPECT_LT(idx, kLinkTableSize);
      seen.push_back(idx);
    }
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

TEST(Topology, NonAdjacentLinkRejected) {
  EXPECT_THROW((void)link_index(Link{TileId::at(0, 0), TileId::at(2, 0)}),
               util::ContractViolation);
}

TEST(Noc, LatencyGrowsWithDistance) {
  NocModel noc;
  const auto near = noc.estimate_latency(CoreId{0}, CoreId{2}, 1024);
  const auto far = noc.estimate_latency(CoreId{0}, CoreId{46}, 1024);
  EXPECT_GT(far, near);
}

TEST(Noc, LatencyGrowsWithSize) {
  NocModel noc;
  const auto small = noc.estimate_latency(CoreId{0}, CoreId{10}, 512);
  const auto large = noc.estimate_latency(CoreId{0}, CoreId{10}, 64 * 1024);
  EXPECT_GT(large, 10 * (small - noc.config().software_overhead_ns));
}

TEST(Noc, ChunkingAtThreeKib) {
  NocModel noc;
  noc = NocModel{};
  (void)noc.transfer(CoreId{0}, CoreId{10}, 3 * 1024, 0);
  EXPECT_EQ(noc.chunks_sent(), 1u);
  (void)noc.transfer(CoreId{0}, CoreId{10}, 3 * 1024 + 1, 0);
  EXPECT_EQ(noc.chunks_sent(), 3u);  // +2
  (void)noc.transfer(CoreId{0}, CoreId{10}, 9 * 1024, 0);
  EXPECT_EQ(noc.chunks_sent(), 6u);  // +3
}

TEST(Noc, ContentionDelaysSharedLink) {
  NocConfig config;
  config.model_contention = true;
  NocModel noc(config);
  // Two same-start transfers crossing the same links: second is delayed.
  const auto first = noc.transfer(CoreId{0}, CoreId{10}, 3 * 1024, 0);
  const auto second = noc.transfer(CoreId{0}, CoreId{10}, 3 * 1024, 0);
  EXPECT_GT(second, first);
  EXPECT_GT(noc.contention_stalls(), 0u);

  NocConfig ideal = config;
  ideal.model_contention = false;
  NocModel free_noc(ideal);
  const auto a = free_noc.transfer(CoreId{0}, CoreId{10}, 3 * 1024, 0);
  const auto b = free_noc.transfer(CoreId{0}, CoreId{10}, 3 * 1024, 0);
  EXPECT_EQ(a, b);
}

TEST(Noc, SameTileTransferSkipsMesh) {
  NocModel noc;
  const auto same = noc.estimate_latency(CoreId{0}, CoreId{1}, 1024);  // same tile
  const auto cross = noc.estimate_latency(CoreId{0}, CoreId{2}, 1024);
  EXPECT_LT(same, cross);
}

TEST(Messaging, CountsPerPair) {
  NocModel noc;
  MessagePassing mp(noc);
  (void)mp.send(CoreId{0}, CoreId{4}, 100, 0);
  (void)mp.send(CoreId{0}, CoreId{4}, 100, 10);
  (void)mp.send(CoreId{4}, CoreId{0}, 100, 20);
  EXPECT_EQ(mp.messages_sent(), 3u);
  EXPECT_EQ(mp.bytes_sent(), 300u);
  EXPECT_EQ(mp.messages_between(CoreId{0}, CoreId{4}), 2u);
  EXPECT_EQ(mp.messages_between(CoreId{4}, CoreId{0}), 1u);
}

TEST(Mapping, OneProcessPerTile) {
  const auto mapping = map_low_contention(10, {});
  std::vector<int> tiles;
  for (const auto core : mapping.process_to_core) {
    tiles.push_back(core.tile().value);
  }
  std::sort(tiles.begin(), tiles.end());
  EXPECT_EQ(std::adjacent_find(tiles.begin(), tiles.end()), tiles.end());
}

TEST(Mapping, LowContentionBeatsRowMajor) {
  // A chain topology: 0 -> 1 -> 2 -> ... -> 9, heavy traffic.
  std::vector<TrafficEdge> edges;
  for (int i = 0; i + 1 < 10; ++i) {
    edges.push_back({i, i + 1, 1'000'000});
  }
  const auto smart = map_low_contention(10, edges);
  const auto naive = map_row_major(10);
  EXPECT_LE(smart.cost(edges), naive.cost(edges));
  // Adjacent chain stages should sit on adjacent tiles (cost = sum of hops =
  // 9 edges * 1 hop in the optimum).
  EXPECT_LE(smart.cost(edges) / 1'000'000, 12u);
}

TEST(Mapping, Deterministic) {
  std::vector<TrafficEdge> edges{{0, 1, 10}, {1, 2, 20}, {2, 3, 5}};
  const auto a = map_low_contention(4, edges);
  const auto b = map_low_contention(4, edges);
  for (std::size_t i = 0; i < a.process_to_core.size(); ++i) {
    EXPECT_EQ(a.process_to_core[i], b.process_to_core[i]);
  }
}

TEST(Mapping, RejectsTooManyProcesses) {
  EXPECT_THROW(map_low_contention(kTileCount + 1, {}), util::ContractViolation);
}

// Regression: a request for more processes than tiles (or a non-positive
// count) must die with the offending count and the valid range in the
// message, not a bare `cond` string.
TEST(Mapping, TooManyProcessesDiagnosticNamesTheCounts) {
  for (const int bad : {0, -3, kTileCount + 1, 1000}) {
    try {
      (void)map_low_contention(bad, {});
      FAIL() << "accepted process_count " << bad;
    } catch (const util::ContractViolation& error) {
      const std::string what = error.what();
      EXPECT_NE(what.find(std::to_string(bad)), std::string::npos) << what;
      EXPECT_NE(what.find(std::to_string(kTileCount)), std::string::npos)
          << what;
    }
    EXPECT_THROW(map_row_major(bad), util::ContractViolation);
  }
}

// Regression: a TrafficEdge naming a process outside [0, process_count) must
// be rejected up front with the edge's endpoints in the message — it used to
// index the traffic matrix out of bounds in release builds.
TEST(Mapping, OutOfRangeEdgeDiagnosticNamesTheEdge) {
  const std::vector<TrafficEdge> edges{{0, 7, 100}};
  try {
    (void)map_low_contention(3, edges);
    FAIL() << "accepted out-of-range edge";
  } catch (const util::ContractViolation& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("0 -> 7"), std::string::npos) << what;
    EXPECT_NE(what.find("process_count is 3"), std::string::npos) << what;
  }
  EXPECT_THROW((void)map_low_contention(3, {{-1, 1, 5}}),
               util::ContractViolation);
}

TEST(Mapping, CostRejectsOutOfRangeEdge) {
  const auto mapping = map_row_major(4);
  EXPECT_THROW((void)mapping.cost({{0, 4, 10}}), util::ContractViolation);
  EXPECT_THROW((void)mapping.cost({{4, 0, 10}}), util::ContractViolation);
}

TEST(Platform, BootDefaultsMatchPaper) {
  sim::Simulator sim;
  Platform platform(sim);
  EXPECT_DOUBLE_EQ(platform.config().tile_frequency_hz, 533e6);
  EXPECT_DOUBLE_EQ(platform.config().router_frequency_hz, 800e6);
  EXPECT_DOUBLE_EQ(platform.config().ddr_frequency_hz, 800e6);
  EXPECT_FALSE(platform.config().l2_cache_enabled);
  EXPECT_FALSE(platform.config().interrupts_enabled);
}

TEST(Platform, ClockSyncAlignsAllCores) {
  sim::Simulator sim;
  Platform platform(sim);
  sim.schedule_at(5'000'000, [] {});
  sim.run();
  platform.synchronize_clocks();
  for (int c = 0; c < kCoreCount; ++c) {
    EXPECT_NEAR(static_cast<double>(platform.local_time(CoreId{c})),
                static_cast<double>(sim.now()), 3.0)
        << "core " << c;
  }
}

TEST(Platform, UnsyncedClocksDisagree) {
  sim::Simulator sim;
  Platform platform(sim);
  sim.schedule_at(1'000'000, [] {});
  sim.run();
  bool any_off = false;
  for (int c = 0; c < kCoreCount; ++c) {
    if (std::abs(platform.local_time(CoreId{c}) - sim.now()) > 10) any_off = true;
  }
  EXPECT_TRUE(any_off);
}


// Property: the fault-free multi-chunk fast path (one closed-form event for
// the tail of the message) must be indistinguishable from sending the same
// message chunk by chunk — same arrival, same chunk counter, same stall
// counter, and same link reservations left behind. The reference model chains
// single-chunk transfers (each transfer_ex call with bytes <= max_chunk_bytes
// walks the route exactly once), so it exercises the pre-closed-form
// semantics; foreign traffic beforehand seeds contention on shared links.
TEST(Noc, ClosedFormMatchesPerChunkReference) {
  std::mt19937 rng(20140601);  // DAC'14, deterministic
  for (int iteration = 0; iteration < 200; ++iteration) {
    NocConfig config;
    config.software_overhead_ns = 0;  // additive start offset, irrelevant here
    config.model_contention = (iteration % 4) != 3;
    NocModel fast(config);
    NocModel reference(config);

    const auto core = [&] {
      return CoreId{static_cast<int>(rng() % static_cast<unsigned>(kCoreCount))};
    };

    // Foreign traffic: identical pre-load on both models so the message under
    // test may stall on live reservations mid-route.
    const int foreign = static_cast<int>(rng() % 4);
    for (int i = 0; i < foreign; ++i) {
      const CoreId src = core(), dst = core();
      const auto bytes = static_cast<std::size_t>(1 + rng() % (4 * 3 * 1024));
      const auto at = static_cast<TimeNs>(rng() % 2'000);
      (void)fast.transfer(src, dst, bytes, at);
      (void)reference.transfer(src, dst, bytes, at);
    }

    const CoreId src = core(), dst = core();
    const auto bytes =
        static_cast<std::size_t>(1 + rng() % (10 * config.max_chunk_bytes));
    const auto start = static_cast<TimeNs>(2'000 + rng() % 10'000);

    const auto fast_outcome = fast.transfer_ex(src, dst, bytes, start);

    // Reference: the same message, one chunk per call, each chunk departing
    // at the previous chunk's arrival.
    TimeNs t = start;
    std::size_t remaining = bytes;
    while (remaining > 0) {
      const std::size_t chunk = std::min(remaining, config.max_chunk_bytes);
      t = reference.transfer(src, dst, chunk, t);
      remaining -= chunk;
    }

    ASSERT_TRUE(fast_outcome.delivered);
    EXPECT_EQ(fast_outcome.arrival, t)
        << "iteration " << iteration << ": " << bytes << " B "
        << src.value << "->" << dst.value;
    EXPECT_EQ(fast.chunks_sent(), reference.chunks_sent());
    EXPECT_EQ(fast.contention_stalls(), reference.contention_stalls());

    // The reservations the message leaves behind must match too: a probe
    // chunk over the same route arrives at the same instant on both models.
    const TimeNs probe_fast = fast.transfer(src, dst, 64, t);
    const TimeNs probe_reference = reference.transfer(src, dst, 64, t);
    EXPECT_EQ(probe_fast, probe_reference) << "iteration " << iteration;
  }
}

}  // namespace
}  // namespace sccft::scc
