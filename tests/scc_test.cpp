// SCC platform model tests: topology, XY routing, NoC latency/contention,
// low-contention mapping, clock synchronization.
#include <gtest/gtest.h>

#include "scc/mapping.hpp"
#include "scc/messaging.hpp"
#include "scc/noc.hpp"
#include "scc/platform.hpp"
#include "scc/topology.hpp"
#include "util/assert.hpp"

namespace sccft::scc {
namespace {

TEST(Topology, Dimensions) {
  EXPECT_EQ(kTileCount, 24);
  EXPECT_EQ(kCoreCount, 48);
  EXPECT_EQ(TileId::at(5, 3).value, 23);
  EXPECT_EQ(CoreId{47}.tile().value, 23);
  EXPECT_EQ(CoreId{47}.local_index(), 1);
}

TEST(Topology, HopCountIsManhattan) {
  EXPECT_EQ(hop_count(TileId::at(0, 0), TileId::at(0, 0)), 0);
  EXPECT_EQ(hop_count(TileId::at(0, 0), TileId::at(5, 3)), 8);
  EXPECT_EQ(hop_count(TileId::at(2, 1), TileId::at(4, 1)), 2);
}

TEST(Topology, XyRouteGoesXThenY) {
  const auto route = xy_route(TileId::at(1, 1), TileId::at(3, 3));
  ASSERT_EQ(route.size(), 5u);  // 2 x-hops + 2 y-hops + origin
  EXPECT_EQ(route[0], TileId::at(1, 1));
  EXPECT_EQ(route[1], TileId::at(2, 1));
  EXPECT_EQ(route[2], TileId::at(3, 1));
  EXPECT_EQ(route[3], TileId::at(3, 2));
  EXPECT_EQ(route[4], TileId::at(3, 3));
}

TEST(Topology, LinkIndexUniquePerDirectedLink) {
  std::vector<int> seen;
  for (int t = 0; t < kTileCount; ++t) {
    const TileId from{t};
    for (const auto& [dc, dr] : {std::pair{1, 0}, {-1, 0}, {0, 1}, {0, -1}}) {
      const int col = from.column() + dc;
      const int row = from.row() + dr;
      if (col < 0 || col >= kMeshColumns || row < 0 || row >= kMeshRows) continue;
      const int idx = link_index(Link{from, TileId::at(col, row)});
      EXPECT_GE(idx, 0);
      EXPECT_LT(idx, kLinkTableSize);
      seen.push_back(idx);
    }
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

TEST(Topology, NonAdjacentLinkRejected) {
  EXPECT_THROW((void)link_index(Link{TileId::at(0, 0), TileId::at(2, 0)}),
               util::ContractViolation);
}

TEST(Noc, LatencyGrowsWithDistance) {
  NocModel noc;
  const auto near = noc.estimate_latency(CoreId{0}, CoreId{2}, 1024);
  const auto far = noc.estimate_latency(CoreId{0}, CoreId{46}, 1024);
  EXPECT_GT(far, near);
}

TEST(Noc, LatencyGrowsWithSize) {
  NocModel noc;
  const auto small = noc.estimate_latency(CoreId{0}, CoreId{10}, 512);
  const auto large = noc.estimate_latency(CoreId{0}, CoreId{10}, 64 * 1024);
  EXPECT_GT(large, 10 * (small - noc.config().software_overhead_ns));
}

TEST(Noc, ChunkingAtThreeKib) {
  NocModel noc;
  noc = NocModel{};
  (void)noc.transfer(CoreId{0}, CoreId{10}, 3 * 1024, 0);
  EXPECT_EQ(noc.chunks_sent(), 1u);
  (void)noc.transfer(CoreId{0}, CoreId{10}, 3 * 1024 + 1, 0);
  EXPECT_EQ(noc.chunks_sent(), 3u);  // +2
  (void)noc.transfer(CoreId{0}, CoreId{10}, 9 * 1024, 0);
  EXPECT_EQ(noc.chunks_sent(), 6u);  // +3
}

TEST(Noc, ContentionDelaysSharedLink) {
  NocConfig config;
  config.model_contention = true;
  NocModel noc(config);
  // Two same-start transfers crossing the same links: second is delayed.
  const auto first = noc.transfer(CoreId{0}, CoreId{10}, 3 * 1024, 0);
  const auto second = noc.transfer(CoreId{0}, CoreId{10}, 3 * 1024, 0);
  EXPECT_GT(second, first);
  EXPECT_GT(noc.contention_stalls(), 0u);

  NocConfig ideal = config;
  ideal.model_contention = false;
  NocModel free_noc(ideal);
  const auto a = free_noc.transfer(CoreId{0}, CoreId{10}, 3 * 1024, 0);
  const auto b = free_noc.transfer(CoreId{0}, CoreId{10}, 3 * 1024, 0);
  EXPECT_EQ(a, b);
}

TEST(Noc, SameTileTransferSkipsMesh) {
  NocModel noc;
  const auto same = noc.estimate_latency(CoreId{0}, CoreId{1}, 1024);  // same tile
  const auto cross = noc.estimate_latency(CoreId{0}, CoreId{2}, 1024);
  EXPECT_LT(same, cross);
}

TEST(Messaging, CountsPerPair) {
  NocModel noc;
  MessagePassing mp(noc);
  (void)mp.send(CoreId{0}, CoreId{4}, 100, 0);
  (void)mp.send(CoreId{0}, CoreId{4}, 100, 10);
  (void)mp.send(CoreId{4}, CoreId{0}, 100, 20);
  EXPECT_EQ(mp.messages_sent(), 3u);
  EXPECT_EQ(mp.bytes_sent(), 300u);
  EXPECT_EQ(mp.messages_between(CoreId{0}, CoreId{4}), 2u);
  EXPECT_EQ(mp.messages_between(CoreId{4}, CoreId{0}), 1u);
}

TEST(Mapping, OneProcessPerTile) {
  const auto mapping = map_low_contention(10, {});
  std::vector<int> tiles;
  for (const auto core : mapping.process_to_core) {
    tiles.push_back(core.tile().value);
  }
  std::sort(tiles.begin(), tiles.end());
  EXPECT_EQ(std::adjacent_find(tiles.begin(), tiles.end()), tiles.end());
}

TEST(Mapping, LowContentionBeatsRowMajor) {
  // A chain topology: 0 -> 1 -> 2 -> ... -> 9, heavy traffic.
  std::vector<TrafficEdge> edges;
  for (int i = 0; i + 1 < 10; ++i) {
    edges.push_back({i, i + 1, 1'000'000});
  }
  const auto smart = map_low_contention(10, edges);
  const auto naive = map_row_major(10);
  EXPECT_LE(smart.cost(edges), naive.cost(edges));
  // Adjacent chain stages should sit on adjacent tiles (cost = sum of hops =
  // 9 edges * 1 hop in the optimum).
  EXPECT_LE(smart.cost(edges) / 1'000'000, 12u);
}

TEST(Mapping, Deterministic) {
  std::vector<TrafficEdge> edges{{0, 1, 10}, {1, 2, 20}, {2, 3, 5}};
  const auto a = map_low_contention(4, edges);
  const auto b = map_low_contention(4, edges);
  for (std::size_t i = 0; i < a.process_to_core.size(); ++i) {
    EXPECT_EQ(a.process_to_core[i], b.process_to_core[i]);
  }
}

TEST(Mapping, RejectsTooManyProcesses) {
  EXPECT_THROW(map_low_contention(kTileCount + 1, {}), util::ContractViolation);
}

TEST(Platform, BootDefaultsMatchPaper) {
  sim::Simulator sim;
  Platform platform(sim);
  EXPECT_DOUBLE_EQ(platform.config().tile_frequency_hz, 533e6);
  EXPECT_DOUBLE_EQ(platform.config().router_frequency_hz, 800e6);
  EXPECT_DOUBLE_EQ(platform.config().ddr_frequency_hz, 800e6);
  EXPECT_FALSE(platform.config().l2_cache_enabled);
  EXPECT_FALSE(platform.config().interrupts_enabled);
}

TEST(Platform, ClockSyncAlignsAllCores) {
  sim::Simulator sim;
  Platform platform(sim);
  sim.schedule_at(5'000'000, [] {});
  sim.run();
  platform.synchronize_clocks();
  for (int c = 0; c < kCoreCount; ++c) {
    EXPECT_NEAR(static_cast<double>(platform.local_time(CoreId{c})),
                static_cast<double>(sim.now()), 3.0)
        << "core " << c;
  }
}

TEST(Platform, UnsyncedClocksDisagree) {
  sim::Simulator sim;
  Platform platform(sim);
  sim.schedule_at(1'000'000, [] {});
  sim.run();
  bool any_off = false;
  for (int c = 0; c < kCoreCount; ++c) {
    if (std::abs(platform.local_time(CoreId{c}) - sim.now()) > 10) any_off = true;
  }
  EXPECT_TRUE(any_off);
}

}  // namespace
}  // namespace sccft::scc
