// Bit-level I/O and Exp-Golomb coding tests.
#include <gtest/gtest.h>

#include "util/assert.hpp"
#include "util/bitio.hpp"
#include "util/rng.hpp"

namespace sccft::util {
namespace {

TEST(BitWriter, MsbFirstPacking) {
  BitWriter writer;
  writer.write_bits(0b101, 3);
  writer.write_bits(0b01, 2);
  writer.write_bits(0b110, 3);
  const auto bytes = writer.finish();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0b10101110);
}

TEST(BitWriter, PadsFinalByteWithZeros) {
  BitWriter writer;
  writer.write_bits(0b11, 2);
  const auto bytes = writer.finish();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0b11000000);
}

TEST(BitWriter, BitCountTracksAll) {
  BitWriter writer;
  writer.write_bits(1, 1);
  writer.write_bits(0xFFFF, 16);
  EXPECT_EQ(writer.bit_count(), 17u);
}

TEST(BitRoundTrip, RandomFieldSequence) {
  Xoshiro256 rng(3);
  std::vector<std::pair<std::uint32_t, int>> fields;
  BitWriter writer;
  for (int i = 0; i < 500; ++i) {
    const int bits = static_cast<int>(rng.uniform_int(1, 32));
    const auto value =
        static_cast<std::uint32_t>(rng.next() & ((bits == 32) ? ~0U : ((1U << bits) - 1)));
    fields.emplace_back(value, bits);
    writer.write_bits(value, bits);
  }
  const auto bytes = writer.finish();
  BitReader reader(bytes);
  for (const auto& [value, bits] : fields) {
    EXPECT_EQ(reader.read_bits(bits), value);
  }
}

TEST(ExpGolomb, UnsignedKnownCodes) {
  // ue(0)=1, ue(1)=010, ue(2)=011, ue(3)=00100 ...
  BitWriter writer;
  writer.write_ue(0);
  writer.write_ue(1);
  writer.write_ue(2);
  writer.write_ue(3);
  const auto bytes = writer.finish();
  BitReader reader(bytes);
  EXPECT_EQ(reader.read_ue(), 0u);
  EXPECT_EQ(reader.read_ue(), 1u);
  EXPECT_EQ(reader.read_ue(), 2u);
  EXPECT_EQ(reader.read_ue(), 3u);
  // 1 + 3 + 3 + 5 bits = 12 bits -> 2 bytes.
  EXPECT_EQ(bytes.size(), 2u);
}

TEST(ExpGolomb, UnsignedRoundTripSweep) {
  BitWriter writer;
  for (std::uint32_t v = 0; v < 2'000; ++v) writer.write_ue(v);
  writer.write_ue(1'000'000);
  const auto bytes = writer.finish();
  BitReader reader(bytes);
  for (std::uint32_t v = 0; v < 2'000; ++v) EXPECT_EQ(reader.read_ue(), v);
  EXPECT_EQ(reader.read_ue(), 1'000'000u);
}

TEST(ExpGolomb, SignedRoundTripSweep) {
  BitWriter writer;
  for (std::int32_t v = -500; v <= 500; ++v) writer.write_se(v);
  const auto bytes = writer.finish();
  BitReader reader(bytes);
  for (std::int32_t v = -500; v <= 500; ++v) EXPECT_EQ(reader.read_se(), v);
}

TEST(BitReader, ReadPastEndRejected) {
  const std::vector<std::uint8_t> bytes{0xAB};
  BitReader reader(bytes);
  (void)reader.read_bits(8);
  EXPECT_THROW((void)reader.read_bits(1), ContractViolation);
}

TEST(BitReader, RemainingBitsAccounting) {
  const std::vector<std::uint8_t> bytes{0xAB, 0xCD};
  BitReader reader(bytes);
  EXPECT_EQ(reader.bits_remaining(), 16u);
  (void)reader.read_bits(5);
  EXPECT_EQ(reader.bits_consumed(), 5u);
  EXPECT_EQ(reader.bits_remaining(), 11u);
}

}  // namespace
}  // namespace sccft::util
