// Bounded exhaustive model checking of the selector channel.
//
// Unlike the randomized property tests (which sample interleavings), this
// suite *enumerates every* interleaving of selector operations up to a depth
// bound via DFS — writes from either interface (each delivering its stream
// in order), consumer reads, and an optional one-time death of replica 1 —
// and asserts on every reachable state:
//
//   I1  consumer stream == 0, 1, 2, ... (no gap, duplicate, or reorder);
//   I2  a write on interface i is blocked iff space_i == 0, and blocking on
//       one interface never perturbs the peer's counters (Lemma 1);
//   I3  the healthy leader is never declared faulty;
//   I4  counter book-keeping: space_i == |S_i| - |S_i|_0 - W_i + R always.
//
// With depth 10 and 4 action kinds this explores ~10^5-10^6 paths; states are
// rebuilt by replaying the action prefix (the channel is cheap to drive).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ft/selector.hpp"
#include "sim/simulator.hpp"

namespace sccft::ft {
namespace {

using kpn::Token;

enum class Action { kWrite1, kWrite2, kRead, kKill1 };

constexpr rtc::Tokens kCap1 = 5;
constexpr rtc::Tokens kCap2 = 6;
constexpr rtc::Tokens kInit1 = 3;
constexpr rtc::Tokens kInit2 = 3;
constexpr rtc::Tokens kD = 4;

Token make_token(std::uint64_t seq) {
  return Token(std::vector<std::uint8_t>{static_cast<std::uint8_t>(seq)}, seq, 0);
}

struct Model {
  sim::Simulator sim;
  SelectorChannel selector{sim, "sel",
                           {.capacity1 = kCap1,
                            .capacity2 = kCap2,
                            .initial1 = kInit1,
                            .initial2 = kInit2,
                            .divergence_threshold = kD,
                            .enable_stall_rule = true}};
  std::uint64_t next1 = 0;
  std::uint64_t next2 = 0;
  std::uint64_t reads = 0;
  std::uint64_t expected = 0;
  bool r1_dead = false;
  bool violated = false;
  std::string failure;

  void fail(const std::string& why) {
    violated = true;
    if (failure.empty()) failure = why;
  }

  /// Applies an action if legal in the current state; returns false if the
  /// action is not applicable (prunes the branch).
  bool apply(Action action) {
    switch (action) {
      case Action::kWrite1: {
        if (r1_dead || selector.fault(ReplicaIndex::kReplica1)) return false;
        // Conforming stream: lead bounded by D-1.
        if (next1 >= next2 + static_cast<std::uint64_t>(kD) - 1) return false;
        if (selector.space(ReplicaIndex::kReplica1) == 0) {
          // I2: blocked write must not change any counter.
          const auto w1 = selector.tokens_received(ReplicaIndex::kReplica1);
          const auto s2 = selector.space(ReplicaIndex::kReplica2);
          if (selector.write_interface(ReplicaIndex::kReplica1)
                  .try_write(make_token(next1))) {
            fail("write succeeded with space_1 == 0");
          }
          if (selector.tokens_received(ReplicaIndex::kReplica1) != w1 ||
              selector.space(ReplicaIndex::kReplica2) != s2) {
            fail("blocked write perturbed counters (Lemma 1)");
          }
          return false;
        }
        if (!selector.write_interface(ReplicaIndex::kReplica1)
                 .try_write(make_token(next1))) {
          fail("write blocked with space_1 > 0");
          return false;
        }
        ++next1;
        return true;
      }
      case Action::kWrite2: {
        if (selector.fault(ReplicaIndex::kReplica2)) return false;
        if (!r1_dead && next2 >= next1 + static_cast<std::uint64_t>(kD) - 1) {
          return false;  // conforming lead bound while both healthy
        }
        if (selector.space(ReplicaIndex::kReplica2) == 0) return false;
        if (!selector.write_interface(ReplicaIndex::kReplica2)
                 .try_write(make_token(next2))) {
          fail("write blocked with space_2 > 0");
          return false;
        }
        ++next2;
        return true;
      }
      case Action::kRead: {
        const auto token = selector.try_read();
        if (!token) return false;
        if (token->seq() != expected) {
          fail("stream integrity: expected " + std::to_string(expected) + " got " +
               std::to_string(token->seq()));
        }
        ++expected;
        ++reads;
        return true;
      }
      case Action::kKill1:
        if (r1_dead) return false;
        r1_dead = true;
        selector.freeze_writer(ReplicaIndex::kReplica1);
        return true;
    }
    return false;
  }

  void check_invariants() {
    // I4: counter book-keeping (W counts only pre-freeze accepted writes;
    // frozen-interface drops don't decrement space).
    const auto w1 = static_cast<rtc::Tokens>(selector.tokens_received(ReplicaIndex::kReplica1));
    const auto w2 = static_cast<rtc::Tokens>(selector.tokens_received(ReplicaIndex::kReplica2));
    const auto r = static_cast<rtc::Tokens>(reads);
    if (selector.space(ReplicaIndex::kReplica1) != kCap1 - kInit1 - w1 + r) {
      fail("space_1 accounting broken");
    }
    if (selector.space(ReplicaIndex::kReplica2) != kCap2 - kInit2 - w2 + r) {
      fail("space_2 accounting broken");
    }
    // I3: while replica 1 is alive and conforming, neither replica may be
    // convicted; after its death, replica 2 must never be convicted.
    if (!r1_dead && (selector.fault(ReplicaIndex::kReplica1) ||
                     selector.fault(ReplicaIndex::kReplica2))) {
      fail("false positive while both replicas conforming");
    }
    if (r1_dead && selector.fault(ReplicaIndex::kReplica2)) {
      fail("healthy survivor convicted");
    }
  }
};

/// Replays `prefix` on a fresh model; returns it (violated flag set on any
/// invariant breach along the way).
std::unique_ptr<Model> replay(const std::vector<Action>& prefix) {
  auto model = std::make_unique<Model>();
  for (Action action : prefix) {
    if (!model->apply(action)) break;  // should not happen: prefix was applicable
    model->check_invariants();
    if (model->violated) break;
  }
  return model;
}

std::uint64_t explored = 0;
std::string first_failure;

void dfs(std::vector<Action>& prefix, int depth_left) {
  if (!first_failure.empty()) return;  // stop at the first counterexample
  const auto state = replay(prefix);
  if (state->violated) {
    first_failure = state->failure + " after prefix of length " +
                    std::to_string(prefix.size());
    return;
  }
  ++explored;
  if (depth_left == 0) return;
  for (Action action : {Action::kWrite1, Action::kWrite2, Action::kRead,
                        Action::kKill1}) {
    // Applicability check on a replayed copy (cheap at these depths).
    auto probe = replay(prefix);
    if (!probe->apply(action)) continue;
    prefix.push_back(action);
    dfs(prefix, depth_left - 1);
    prefix.pop_back();
  }
}

TEST(SelectorModelCheck, AllInterleavingsUpToDepth9HoldInvariants) {
  explored = 0;
  first_failure.clear();
  std::vector<Action> prefix;
  dfs(prefix, 9);
  EXPECT_TRUE(first_failure.empty()) << first_failure;
  // Sanity: the exploration actually covered a large space.
  EXPECT_GT(explored, 10'000u);
}

TEST(SelectorModelCheck, DeathBranchesEventuallyDetect) {
  // Directed scenario from the model: kill replica 1 immediately, then let
  // replica 2 run. The divergence rule must convict replica 1 within D
  // writes, in EVERY read/write interleaving of depth 12.
  std::uint64_t detected_paths = 0;
  std::uint64_t total_paths = 0;
  // Enumerate all binary sequences of (write2, read) after the kill.
  for (std::uint32_t mask = 0; mask < (1u << 12); ++mask) {
    Model model;
    ASSERT_TRUE(model.apply(Action::kKill1));
    int writes = 0;
    for (int bit = 0; bit < 12; ++bit) {
      const Action action = (mask >> bit) & 1u ? Action::kWrite2 : Action::kRead;
      if (model.apply(action) && action == Action::kWrite2) ++writes;
      model.check_invariants();
      ASSERT_FALSE(model.violated) << model.failure;
    }
    ++total_paths;
    if (model.selector.fault(ReplicaIndex::kReplica1)) ++detected_paths;
    // Whenever replica 2 delivered enough tokens and the consumer kept
    // reading, the fault must have been flagged.
    if (writes >= static_cast<int>(kD) + 2 && model.reads >= 4) {
      EXPECT_TRUE(model.selector.fault(ReplicaIndex::kReplica1))
          << "undetected after " << writes << " writes, mask " << mask;
    }
  }
  EXPECT_GT(detected_paths, 0u);
  EXPECT_EQ(total_paths, 1u << 12);
}

}  // namespace
}  // namespace sccft::ft
