// FaultTolerantHarness + FaultInjector tests.
#include <gtest/gtest.h>

#include <string>

#include "apps/mjpeg/app.hpp"
#include "ft/framework.hpp"
#include "kpn/network.hpp"
#include "util/assert.hpp"

namespace sccft::ft {
namespace {

AppTimingSpec mjpeg_timing() { return apps::mjpeg::make_application().timing; }

TEST(Harness, BuildsDimensionedChannels) {
  sim::Simulator sim;
  kpn::Network net(sim);
  FaultTolerantHarness harness(net, {.timing = mjpeg_timing()});
  EXPECT_EQ(harness.sizing().replicator_capacity1, 2);
  EXPECT_EQ(harness.sizing().replicator_capacity2, 3);
  EXPECT_EQ(harness.selector().space(ReplicaIndex::kReplica1), 4 - 2);
  EXPECT_EQ(harness.selector().space(ReplicaIndex::kReplica2), 6 - 3);
  EXPECT_NE(net.find_channel("ft.replicator"), nullptr);
  EXPECT_NE(net.find_channel("ft.selector"), nullptr);
}

TEST(Harness, DivergenceOverrideApplies) {
  sim::Simulator sim;
  kpn::Network net(sim);
  FaultTolerantHarness harness(
      net, {.timing = mjpeg_timing(), .divergence_threshold_override = 9});
  // Detections only via observer; verify override by driving the selector.
  auto& w2 = harness.selector().write_interface(ReplicaIndex::kReplica2);
  for (std::uint64_t k = 0; k < 8; ++k) {
    ASSERT_TRUE(w2.try_write(kpn::Token(std::vector<std::uint8_t>{1}, k, 0)));
    (void)harness.selector().try_read();
  }
  // W2-W1 = 8 < 9: no divergence fault; and stall rule may fire instead, so
  // disable comparison there — only check divergence did not trigger.
  const auto detection = harness.selector().detection(ReplicaIndex::kReplica1);
  if (detection) {
    EXPECT_NE(detection->rule, DetectionRule::kSelectorDivergence);
  }
}

TEST(Harness, CapacityOverrideApplies) {
  sim::Simulator sim;
  kpn::Network net(sim);
  FaultTolerantHarness harness(
      net, {.timing = mjpeg_timing(), .replicator_capacity_override = 7});
  EXPECT_EQ(harness.replicator().space(ReplicaIndex::kReplica1), 7);
  EXPECT_EQ(harness.replicator().space(ReplicaIndex::kReplica2), 7);
}

TEST(Harness, NegativeOverridesAreRejectedWithTheOffendingValue) {
  // 0 means "use the analyzed size"; a negative override is neither unset
  // nor legal, and silently falling back to the analysis would hide the
  // caller's bug. The diagnostic must carry the value that was passed.
  sim::Simulator sim;
  kpn::Network net(sim);
  try {
    FaultTolerantHarness harness(
        net, {.timing = mjpeg_timing(), .divergence_threshold_override = -3});
    FAIL() << "negative divergence override accepted";
  } catch (const util::ContractViolation& violation) {
    EXPECT_NE(std::string(violation.what()).find("divergence_threshold_override"),
              std::string::npos);
    EXPECT_NE(std::string(violation.what()).find("-3"), std::string::npos);
  }
  try {
    FaultTolerantHarness harness(
        net, {.timing = mjpeg_timing(), .replicator_capacity_override = -7});
    FAIL() << "negative capacity override accepted";
  } catch (const util::ContractViolation& violation) {
    EXPECT_NE(std::string(violation.what()).find("replicator_capacity_override"),
              std::string::npos);
    EXPECT_NE(std::string(violation.what()).find("-7"), std::string::npos);
  }
}

TEST(Harness, DetectionLogAggregatesBothChannels) {
  sim::Simulator sim;
  kpn::Network net(sim);
  FaultTolerantHarness harness(net, {.timing = mjpeg_timing()});
  // Force a replicator overflow (3 writes into |R1|=2 with nobody reading).
  for (std::uint64_t k = 0; k < 3; ++k) {
    ASSERT_TRUE(harness.replicator().try_write(kpn::Token({1}, k, 0)));
  }
  EXPECT_TRUE(harness.detections().first_replicator().has_value());
  EXPECT_TRUE(harness.detections().first().has_value());
  EXPECT_FALSE(harness.detections().first_selector().has_value());
}

TEST(Injector, SilenceParksProcessAtGate) {
  sim::Simulator sim;
  kpn::Network net(sim);
  int iterations = 0;
  auto& victim = net.add_process(
      "victim", scc::CoreId{0}, 1, [&](kpn::ProcessContext& ctx) -> sim::Task {
        while (true) {
          SCCFT_FAULT_GATE(ctx);
          ++iterations;
          co_await ctx.delay(100);
        }
      });
  FaultInjector injector(sim);
  injector.schedule({&victim}, 1'000, FaultMode::kSilence);
  net.run_until(10'000);
  EXPECT_TRUE(injector.fired());
  // ~10 iterations before the fault at t=1000, none after (one gate pass).
  EXPECT_LE(iterations, 12);
  EXPECT_GE(iterations, 9);
}

TEST(Injector, RateDegradationSlowsCompute) {
  sim::Simulator sim;
  kpn::Network net(sim);
  std::vector<rtc::TimeNs> ticks;
  auto& victim = net.add_process(
      "victim", scc::CoreId{0}, 1, [&](kpn::ProcessContext& ctx) -> sim::Task {
        while (true) {
          co_await ctx.compute(100);
          ticks.push_back(ctx.now());
        }
      });
  FaultInjector injector(sim);
  injector.schedule({&victim}, 1'000, FaultMode::kRateDegradation, 4.0);
  net.run_until(3'000);
  // Before t=1000: ticks every 100. After: every 400.
  ASSERT_GT(ticks.size(), 12u);
  EXPECT_EQ(ticks[9], 1'000);
  EXPECT_EQ(ticks[10], 1'400);
  EXPECT_EQ(ticks[11], 1'800);
}

TEST(Injector, SingleFaultHypothesisEnforced) {
  sim::Simulator sim;
  kpn::Network net(sim);
  auto& p = net.add_process("p", scc::CoreId{0}, 1,
                            [](kpn::ProcessContext&) -> sim::Task { co_return; });
  FaultInjector injector(sim);
  injector.schedule({&p}, 100);
  EXPECT_THROW(injector.schedule({&p}, 200), util::ContractViolation);
}

TEST(Injector, RateFactorMustExceedOne) {
  sim::Simulator sim;
  kpn::Network net(sim);
  auto& p = net.add_process("p", scc::CoreId{0}, 1,
                            [](kpn::ProcessContext&) -> sim::Task { co_return; });
  FaultInjector injector(sim);
  EXPECT_THROW(injector.schedule({&p}, 100, FaultMode::kRateDegradation, 1.0),
               util::ContractViolation);
}

TEST(TimingSpec, HorizonCoversLargestModel) {
  const auto spec = mjpeg_timing();
  EXPECT_GE(spec.default_horizon(), 100 * spec.producer.period);
}

}  // namespace
}  // namespace sccft::ft
