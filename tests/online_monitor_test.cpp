// OnlineMonitor glue tests: TraceBus feeding, one-shot kCurveViolation
// escalation, cross-stream starvation witnessing, finalize() metrics
// publication, the Supervisor's conviction path for curve-conformance
// verdicts, and the end-to-end experiment harness under PJD drift.
//
// The monitor's only data-path input is kEmission; under
// SCCFT_TRACE_COMPILED_OUT the experiment-level test flips to asserting the
// zero-function guarantee (no events observed at all) instead.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "apps/adpcm/app.hpp"
#include "apps/common/experiment.hpp"
#include "ft/framework.hpp"
#include "ft/supervisor.hpp"
#include "kpn/network.hpp"
#include "rtc/online/monitor.hpp"
#include "rtc/pjd.hpp"
#include "rtc/time.hpp"
#include "sim/simulator.hpp"
#include "trace/bus.hpp"

namespace sccft {
namespace {

using rtc::TimeNs;
using rtc::online::LatticeConfig;
using rtc::online::OnlineMonitor;
using rtc::online::StreamSpec;

/// Captures every kCurveViolation the monitor escalates.
class ViolationLog final : public trace::Sink {
 public:
  explicit ViolationLog(trace::TraceBus& bus) : bus_(bus) {
    bus_.subscribe(this, trace::bit(trace::EventKind::kCurveViolation));
  }
  ~ViolationLog() override { bus_.unsubscribe(this); }
  void on_event(const trace::Event& event) override { events.push_back(event); }

  std::vector<trace::Event> events;

 private:
  trace::TraceBus& bus_;
};

StreamSpec spec_for(const std::string& subject, const std::string& name,
                    int replica, const rtc::PJD& model) {
  const auto curves = rtc::ArrivalCurvePair::from_pjd(model);
  StreamSpec spec;
  spec.subject = subject;
  spec.name = name;
  spec.replica = replica;
  spec.design_lower = curves.lower;
  spec.design_upper = curves.upper;
  return spec;
}

TEST(OnlineMonitor, EscalatesTheFirstBreachOncePerStream) {
  trace::TraceBus bus;
  const rtc::PJD model = rtc::PJD::from_ms(10, 0, 0);
  const TimeNs period = model.period;
  OnlineMonitor monitor(bus, {.base_delta = period, .levels = 4},
                        {spec_for("stream.a", "a", /*replica=*/0, model)});
  ViolationLog log(bus);
  const trace::SubjectId subject = bus.intern("stream.a");

  // A strictly periodic stream conforms to its own PJD envelope.
  TimeNs t = 0;
  for (int k = 0; k < 10; ++k) {
    t = (k + 1) * period;
    bus.emit(trace::EventKind::kEmission, subject, t);
  }
  EXPECT_TRUE(log.events.empty());

  // Two extra emissions at the same instant blow the jitter-free upper
  // curve; the monitor escalates exactly once and then stays quiet.
  bus.emit(trace::EventKind::kEmission, subject, t);
  bus.emit(trace::EventKind::kEmission, subject, t);
  ASSERT_EQ(log.events.size(), 1u);
  const trace::Event& v = log.events.front();
  EXPECT_EQ(v.kind, trace::EventKind::kCurveViolation);
  EXPECT_EQ(v.subject, subject);
  EXPECT_EQ(v.time, t);
  EXPECT_EQ(v.a, 0);  // replica index from the StreamSpec
  EXPECT_EQ(v.b, 0);  // upper breach
  EXPECT_GE(v.c, 0);  // lattice level

  bus.emit(trace::EventKind::kEmission, subject, t);
  EXPECT_EQ(log.events.size(), 1u) << "escalation must be one-shot per stream";
}

TEST(OnlineMonitor, PeerTrafficWitnessesAStarvedStream) {
  trace::TraceBus bus;
  const rtc::PJD model = rtc::PJD::from_ms(10, 0, 0);
  const TimeNs period = model.period;
  OnlineMonitor monitor(bus, {.base_delta = period, .levels = 3},
                        {spec_for("stream.a", "a", 0, model),
                         spec_for("stream.b", "b", 1, model)});
  ViolationLog log(bus);
  const trace::SubjectId a = bus.intern("stream.a");
  const trace::SubjectId b = bus.intern("stream.b");

  // Both streams run conformantly, then B falls silent while A keeps going.
  // B never emits again, so only A's traffic can advance B's estimator far
  // enough to certify the starved lower windows.
  TimeNs t = 0;
  for (int k = 1; k <= 12; ++k) {
    t = k * period;
    bus.emit(trace::EventKind::kEmission, a, t);
    bus.emit(trace::EventKind::kEmission, b, t);
  }
  EXPECT_TRUE(log.events.empty());
  for (int k = 13; k <= 40 && log.events.empty(); ++k) {
    t = k * period;
    bus.emit(trace::EventKind::kEmission, a, t);
  }
  ASSERT_EQ(log.events.size(), 1u) << "starvation on B was never flagged";
  EXPECT_EQ(log.events.front().subject, b);
  EXPECT_EQ(log.events.front().a, 1);  // B's replica index
  EXPECT_EQ(log.events.front().b, 1);  // lower breach
}

TEST(OnlineMonitor, FinalizePublishesReportsAndMetrics) {
  trace::TraceBus bus;
  const rtc::PJD model = rtc::PJD::from_ms(10, 1, 5);
  const TimeNs period = model.period;
  OnlineMonitor monitor(bus, {.base_delta = period, .levels = 4},
                        {spec_for("stream.a", "a", 0, model)});
  const trace::SubjectId subject = bus.intern("stream.a");
  for (int k = 1; k <= 20; ++k) {
    bus.emit(trace::EventKind::kEmission, subject, k * period);
  }

  // Finalize just past the last event: advancing far beyond it would be
  // genuine starvation and legitimately trip the lower check.
  const TimeNs end = 20 * period + period / 2;
  const auto reports = monitor.finalize(end);
  ASSERT_EQ(reports.size(), 1u);
  const auto& report = reports.front();
  EXPECT_EQ(report.name, "a");
  EXPECT_EQ(report.replica, 0);
  EXPECT_EQ(report.events, 20u);
  EXPECT_EQ(report.upper_violations, 0u);
  EXPECT_EQ(report.lower_violations, 0u);
  EXPECT_FALSE(report.first.has_value());
  // finalize() advances the estimator to `end` before snapshotting.
  EXPECT_EQ(report.snapshot.at, end);
  EXPECT_EQ(report.snapshot.events, 20u);
  ASSERT_EQ(report.snapshot.points.size(), 4u);
  EXPECT_EQ(report.snapshot.points[0].delta, period);
  EXPECT_EQ(report.snapshot.points[0].upper, 1);

  const auto& metrics = bus.metrics();
  EXPECT_EQ(metrics.counter("online.a.events"), 20u);
  EXPECT_EQ(metrics.counter("online.a.upper_violations"), 0u);
  EXPECT_EQ(metrics.counter("online.a.lower_violations"), 0u);
}

TEST(OnlineMonitor, FinalizeRecordsTheFirstViolationInstant) {
  trace::TraceBus bus;
  const rtc::PJD model = rtc::PJD::from_ms(10, 0, 0);
  const TimeNs period = model.period;
  OnlineMonitor monitor(bus, {.base_delta = period, .levels = 3},
                        {spec_for("stream.a", "a", 0, model)});
  const trace::SubjectId subject = bus.intern("stream.a");
  for (int k = 1; k <= 5; ++k) {
    bus.emit(trace::EventKind::kEmission, subject, k * period);
  }
  const TimeNs burst_at = 5 * period;
  bus.emit(trace::EventKind::kEmission, subject, burst_at);
  bus.emit(trace::EventKind::kEmission, subject, burst_at);

  const auto reports = monitor.finalize(6 * period);
  ASSERT_EQ(reports.size(), 1u);
  ASSERT_TRUE(reports.front().first.has_value());
  EXPECT_EQ(reports.front().first->at, burst_at);
  EXPECT_TRUE(reports.front().first->upper);
  EXPECT_GE(reports.front().upper_violations, 1u);
  EXPECT_EQ(bus.metrics().gauge("online.a.first_violation_ns"), burst_at);
}

/// Minimal fault-tolerant rig: channels only, no processes. Enough for the
/// Supervisor to subscribe and run its health state machine; restarts are
/// never executed because the simulator is never run.
struct SupervisorRig {
  sim::Simulator simulator;
  kpn::Network net{simulator};
  ft::AppTimingSpec timing;
  std::optional<ft::FaultTolerantHarness> harness;

  SupervisorRig() {
    timing.producer = rtc::PJD::from_ms(10, 1, 10);
    timing.replica1_in = timing.replica1_out = rtc::PJD::from_ms(10, 2, 10);
    timing.replica2_in = timing.replica2_out = rtc::PJD::from_ms(10, 6, 10);
    timing.consumer = rtc::PJD::from_ms(10, 1, 10);
    harness.emplace(net, ft::FaultTolerantHarness::Config{.timing = timing});
  }

  [[nodiscard]] std::array<ft::ReplicaAssets, 2> assets() {
    return {ft::ReplicaAssets{ft::ReplicaIndex::kReplica1, {}, {}},
            ft::ReplicaAssets{ft::ReplicaIndex::kReplica2, {}, {}}};
  }
};

TEST(Supervisor, CurveViolationVerdictConvictsTheNamedReplica) {
  SupervisorRig rig;
  ft::Supervisor supervisor(rig.simulator, rig.harness->replicator(),
                            rig.harness->selector(), rig.assets(), {});
  trace::TraceBus& bus = rig.simulator.trace();
  const trace::SubjectId subject = bus.intern("r2.out");

  // The monitor names replica 2 in operand a, a lower breach at level 1.
  bus.emit(trace::EventKind::kCurveViolation, subject, rtc::from_ms(120.0),
           /*a=*/1, /*b=*/1, /*c=*/1);

  EXPECT_EQ(supervisor.health(ft::ReplicaIndex::kReplica2),
            ft::ReplicaHealth::kConvicted);
  EXPECT_EQ(supervisor.health(ft::ReplicaIndex::kReplica1),
            ft::ReplicaHealth::kHealthy);
  EXPECT_EQ(supervisor.report(ft::ReplicaIndex::kReplica2).faults_seen, 1u);
  ASSERT_FALSE(supervisor.transitions().empty());
  const auto& edge = supervisor.transitions().front();
  EXPECT_EQ(edge.replica, ft::ReplicaIndex::kReplica2);
  EXPECT_EQ(edge.from, ft::ReplicaHealth::kHealthy);
  EXPECT_EQ(edge.to, ft::ReplicaHealth::kConvicted);
  // Transitions are stamped with simulator time, which never advanced here.
  EXPECT_EQ(edge.at, 0);
}

TEST(Supervisor, NonReplicaCurveViolationIsNotedButNotActionable) {
  SupervisorRig rig;
  ft::Supervisor supervisor(rig.simulator, rig.harness->replicator(),
                            rig.harness->selector(), rig.assets(), {});
  trace::TraceBus& bus = rig.simulator.trace();
  // replica = -1: the producer drifted; no replica can be restarted for that.
  bus.emit(trace::EventKind::kCurveViolation, bus.intern("producer"),
           rtc::from_ms(50.0), /*a=*/-1, /*b=*/0, /*c=*/0);

  EXPECT_EQ(supervisor.health(ft::ReplicaIndex::kReplica1),
            ft::ReplicaHealth::kHealthy);
  EXPECT_EQ(supervisor.health(ft::ReplicaIndex::kReplica2),
            ft::ReplicaHealth::kHealthy);
  EXPECT_TRUE(supervisor.transitions().empty());
}

// ---------------------------------------------------------------------------
// End-to-end: the experiment harness wires the monitor to the real ADPCM
// network. With data-path tracing compiled out the monitor observes nothing
// (the zero-function guarantee); compiled in, PJD drift on replica 1 is
// flagged on r1.out after the onset and nowhere before it.
// ---------------------------------------------------------------------------

apps::ExperimentOptions drift_options() {
  apps::ExperimentOptions options;
  options.seed = 7;
  options.run_periods = 140;
  options.online_monitor = true;
  options.online_levels = 5;
  return options;
}

const apps::ExperimentResult::OnlineStream* find_stream(
    const apps::ExperimentResult& result, const std::string& name) {
  for (const auto& stream : result.online_streams) {
    if (stream.name == name) return &stream;
  }
  return nullptr;
}

TEST(OnlineExperiment, ConformantRunHasNoViolations) {
  apps::ExperimentRunner runner(apps::adpcm::make_application());
  const auto result = runner.run(drift_options());
  ASSERT_EQ(result.online_streams.size(), 3u);
  for (const auto& stream : result.online_streams) {
#ifdef SCCFT_TRACE_COMPILED_OUT
    EXPECT_EQ(stream.events, 0u) << stream.name
                                 << ": monitor must observe nothing when the "
                                    "data path is compiled out";
#else
    EXPECT_GT(stream.events, 0u) << stream.name;
#endif
    EXPECT_EQ(stream.upper_violations, 0u) << stream.name;
    EXPECT_EQ(stream.lower_violations, 0u) << stream.name;
    EXPECT_FALSE(stream.first_violation.has_value()) << stream.name;
  }
}

#ifndef SCCFT_TRACE_COMPILED_OUT
TEST(OnlineExperiment, ReplicaDriftIsFlaggedOnItsOwnStreamAfterTheOnset) {
  apps::ExperimentRunner runner(apps::adpcm::make_application());
  auto options = drift_options();
  options.drift.target = apps::DriftSpec::Target::kReplica1;
  options.drift.after_periods = 60;
  options.drift.rate_mult = 1.6;
  const auto result = runner.run(options);
  const TimeNs onset = 60 * runner.app().timing.producer.period;

  const auto* drifted = find_stream(result, "r1.out");
  ASSERT_NE(drifted, nullptr);
  ASSERT_TRUE(drifted->first_violation.has_value())
      << "rate drift on r1 escaped the monitor";
  EXPECT_GE(drifted->first_violation->at, onset)
      << "violation before the drift even started (false positive)";

  // The untouched producer stream stays conformant for the whole run.
  const auto* producer = find_stream(result, "producer");
  ASSERT_NE(producer, nullptr);
  EXPECT_FALSE(producer->first_violation.has_value());

  ASSERT_TRUE(result.online_margins.has_value());
  EXPECT_GT(result.online_margins->horizon, 0);
}
#endif

}  // namespace
}  // namespace sccft
