// GPC / service-curve propagation tests.
#include <gtest/gtest.h>

#include "rtc/gpc.hpp"
#include "rtc/minplus.hpp"
#include "rtc/pjd.hpp"
#include "rtc/sizing.hpp"
#include "util/assert.hpp"

namespace sccft::rtc {
namespace {

constexpr TimeNs kHorizon = from_ms(2000.0);

TEST(RateLatency, Evaluation) {
  RateLatencyCurve service(from_ms(5.0), from_ms(2.0));
  EXPECT_EQ(service.value_at(0), 0);
  EXPECT_EQ(service.value_at(from_ms(2.0)), 0);
  EXPECT_EQ(service.value_at(from_ms(7.0)), 1);
  EXPECT_EQ(service.value_at(from_ms(12.0)), 2);
  EXPECT_EQ(service.value_at(from_ms(52.0)), 10);
  EXPECT_DOUBLE_EQ(service.long_term_rate(), 1.0 / from_ms(5.0));
}

TEST(RateLatency, JumpPointsBracketChanges) {
  RateLatencyCurve service(from_ms(5.0), from_ms(2.0));
  for (TimeNs at : service.jump_points_up_to(from_ms(100.0))) {
    EXPECT_GT(service.value_at(at), service.value_at(at - 1));
  }
}

TEST(RateLatency, InvalidRejected) {
  EXPECT_THROW(RateLatencyCurve(0, 0), util::ContractViolation);
  EXPECT_THROW(RateLatencyCurve(10, -1), util::ContractViolation);
}

TEST(HorizontalDeviation, PeriodicThroughFastServer) {
  // Periodic 10 ms arrivals through a 5 ms/token, 2 ms latency server:
  // each token waits at most latency + one service quantum.
  PJDUpperCurve arrivals(PJD::from_ms(10, 0, 0));
  RateLatencyCurve service(from_ms(5.0), from_ms(2.0));
  const auto delay = horizontal_deviation(arrivals, service, kHorizon);
  ASSERT_TRUE(delay.has_value());
  // The first token can arrive at Delta = 1 ns (eta+ jumps there) and is
  // served by latency + one quantum = 7 ms.
  EXPECT_EQ(*delay, from_ms(7.0) - 1);
}

TEST(HorizontalDeviation, GrowsWithBurst) {
  RateLatencyCurve service(from_ms(5.0), from_ms(1.0));
  PJDUpperCurve smooth(PJD::from_ms(10, 0, 0));
  PJDUpperCurve bursty(PJD::from_ms(10, 40, 0));
  const auto d_smooth = horizontal_deviation(smooth, service, kHorizon);
  const auto d_bursty = horizontal_deviation(bursty, service, kHorizon);
  ASSERT_TRUE(d_smooth && d_bursty);
  EXPECT_GT(*d_bursty, *d_smooth);
}

TEST(HorizontalDeviation, UnstableSystemReturnsNullopt) {
  PJDUpperCurve arrivals(PJD::from_ms(5, 0, 0));       // 1 / 5 ms
  RateLatencyCurve service(from_ms(10.0), 0);          // 1 / 10 ms
  EXPECT_FALSE(horizontal_deviation(arrivals, service, from_ms(200.0)).has_value());
}

TEST(Gpc, OutputCurvesBracketAndStayOrdered) {
  const PJD model = PJD::from_ms(10, 5, 0);
  PJDUpperCurve upper(model);
  PJDLowerCurve lower(model);
  RateLatencyCurve service(from_ms(4.0), from_ms(3.0));
  const auto result = gpc_analyze(upper, lower, service, from_ms(500.0));
  for (TimeNs t = 0; t <= from_ms(400.0); t += from_ms(1.0)) {
    // Output upper must dominate output lower...
    EXPECT_GE(result.output_upper.value_at(t), result.output_lower.value_at(t));
    // ...and the output upper can only be burstier than the input upper
    // (jitter added by the server), never below the input lower.
    EXPECT_GE(result.output_upper.value_at(t), lower.value_at(t));
  }
}

TEST(Gpc, ConservationOfLongTermRate) {
  const PJD model = PJD::from_ms(10, 3, 0);
  PJDUpperCurve upper(model);
  PJDLowerCurve lower(model);
  RateLatencyCurve service(from_ms(2.0), from_ms(1.0));
  const auto result = gpc_analyze(upper, lower, service, from_ms(800.0));
  // Over the horizon the output bounds converge to the input rate: the
  // server neither creates nor destroys tokens.
  const TimeNs t = from_ms(600.0);
  const double rate_u = static_cast<double>(result.output_upper.value_at(t)) /
                        static_cast<double>(t);
  const double rate_l = static_cast<double>(result.output_lower.value_at(t)) /
                        static_cast<double>(t);
  const double in_rate = 1.0 / static_cast<double>(model.period);
  EXPECT_NEAR(rate_u, in_rate, in_rate * 0.15);
  EXPECT_NEAR(rate_l, in_rate, in_rate * 0.15);
}

TEST(Gpc, BacklogMatchesVerticalDeviation) {
  PJDUpperCurve upper(PJD::from_ms(10, 25, 0));
  PJDLowerCurve lower(PJD::from_ms(10, 25, 0));
  RateLatencyCurve service(from_ms(6.0), from_ms(2.0));
  const auto result = gpc_analyze(upper, lower, service, from_ms(800.0));
  Tokens dense = 0;
  for (TimeNs t = 0; t <= from_ms(400.0); t += from_ms(0.5)) {
    dense = std::max(dense, upper.value_at(t) - service.value_at(t));
  }
  EXPECT_EQ(result.backlog_bound, dense);
}

TEST(Gpc, RemainingServiceIsLeftover) {
  PJDUpperCurve upper(PJD::from_ms(10, 0, 0));   // consumes 1 / 10 ms
  PJDLowerCurve lower(PJD::from_ms(10, 0, 0));
  RateLatencyCurve service(from_ms(2.0), 0);     // offers 1 / 2 ms
  const auto result = gpc_analyze(upper, lower, service, from_ms(400.0));
  // Long-run leftover rate = 1/2ms - 1/10ms = 4 tokens / 10 ms.
  const TimeNs t = from_ms(300.0);
  const double leftover = static_cast<double>(result.remaining_service.value_at(t)) /
                          static_cast<double>(t);
  EXPECT_NEAR(leftover, 1.0 / from_ms(2.5), 0.1 / from_ms(2.5));
  // Monotone and never exceeds the full service.
  Tokens prev = 0;
  for (TimeNs x = 0; x <= from_ms(300.0); x += from_ms(1.0)) {
    EXPECT_GE(result.remaining_service.value_at(x), prev);
    EXPECT_LE(result.remaining_service.value_at(x), service.value_at(x));
    prev = result.remaining_service.value_at(x);
  }
}

TEST(Gpc, UnstableRejected) {
  PJDUpperCurve upper(PJD::from_ms(5, 0, 0));
  PJDLowerCurve lower(PJD::from_ms(5, 0, 0));
  RateLatencyCurve service(from_ms(10.0), 0);
  EXPECT_THROW((void)gpc_analyze(upper, lower, service, from_ms(200.0)),
               util::ContractViolation);
}

// End-to-end design flow: derive a replica's output curves from its input
// curves + service curve, then feed the derived curves into the Eq. (3)/(4)
// sizing — the complete reference-[1] workflow.
TEST(Gpc, DerivedCurvesFeedSizing) {
  const PJD producer = PJD::from_ms(10, 1, 0);
  PJDUpperCurve in_upper(producer);
  PJDLowerCurve in_lower(producer);
  RateLatencyCurve replica_service(from_ms(3.0), from_ms(2.0));
  const auto derived = gpc_analyze(in_upper, in_lower, replica_service, from_ms(800.0));

  // Consumer demands at the producer rate.
  PJDUpperCurve consumer_upper(producer);
  const auto initial =
      min_initial_fill(derived.output_lower, consumer_upper, from_ms(700.0));
  ASSERT_TRUE(initial.has_value());
  EXPECT_GE(*initial, 1);
  EXPECT_LE(*initial, 5);

  // And the replicator capacity against the derived consumption (here the
  // replica consumes as served: input bounded by its own upper curve).
  const auto capacity = min_fifo_capacity(in_upper, derived.output_lower,
                                          from_ms(700.0));
  ASSERT_TRUE(capacity.has_value());
  EXPECT_GE(*capacity, 1);
}

}  // namespace
}  // namespace sccft::rtc
