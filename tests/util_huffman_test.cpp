// Canonical Huffman coding tests.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "util/assert.hpp"
#include "util/huffman.hpp"
#include "util/rng.hpp"

namespace sccft::util {
namespace {

std::vector<std::uint64_t> freqs_of(const std::vector<int>& stream) {
  std::vector<std::uint64_t> freqs(256, 0);
  for (int s : stream) freqs[static_cast<std::size_t>(s)]++;
  return freqs;
}

std::vector<int> random_stream(std::uint64_t seed, int count, int alphabet) {
  Xoshiro256 rng(seed);
  std::vector<int> stream;
  stream.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    // Skewed: low symbols much more likely (geometric-ish).
    int s = 0;
    while (s < alphabet - 1 && rng.chance(0.6)) ++s;
    stream.push_back(s);
  }
  return stream;
}

TEST(Huffman, RoundTripSkewedStream) {
  const auto stream = random_stream(1, 5'000, 40);
  const auto table = HuffmanTable::build(freqs_of(stream));
  BitWriter writer;
  for (int s : stream) table.encode(writer, s);
  const auto bytes = writer.finish();
  BitReader reader(bytes);
  for (int s : stream) EXPECT_EQ(table.decode(reader), s);
}

TEST(Huffman, TableSerializationRoundTrip) {
  const auto stream = random_stream(2, 2'000, 80);
  const auto table = HuffmanTable::build(freqs_of(stream));
  BitWriter writer;
  table.write_to(writer);
  for (int s : stream) table.encode(writer, s);
  const auto bytes = writer.finish();

  BitReader reader(bytes);
  const auto loaded = HuffmanTable::read_from(reader);
  EXPECT_EQ(loaded.symbol_count(), table.symbol_count());
  for (int s : stream) EXPECT_EQ(loaded.decode(reader), s);
}

TEST(Huffman, ShorterCodesForFrequentSymbols) {
  std::vector<std::uint64_t> freqs(256, 0);
  freqs[7] = 1'000;
  freqs[8] = 100;
  freqs[9] = 10;
  freqs[10] = 1;
  const auto table = HuffmanTable::build(freqs);
  EXPECT_LE(table.code_length(7), table.code_length(9));
  EXPECT_LE(table.code_length(8), table.code_length(10));
}

TEST(Huffman, BeatsFixedWidthOnSkewedData) {
  const auto stream = random_stream(3, 20'000, 64);  // 6-bit alphabet
  const auto table = HuffmanTable::build(freqs_of(stream));
  BitWriter writer;
  for (int s : stream) table.encode(writer, s);
  const std::size_t huff_bits = writer.bit_count();
  EXPECT_LT(huff_bits, 20'000u * 6u);
}

TEST(Huffman, SingleSymbolAlphabet) {
  std::vector<std::uint64_t> freqs(256, 0);
  freqs[42] = 99;
  const auto table = HuffmanTable::build(freqs);
  BitWriter writer;
  table.encode(writer, 42);
  table.encode(writer, 42);
  const auto bytes = writer.finish();
  BitReader reader(bytes);
  EXPECT_EQ(table.decode(reader), 42);
  EXPECT_EQ(table.decode(reader), 42);
}

TEST(Huffman, FullAlphabet) {
  std::vector<std::uint64_t> freqs(256, 1);
  const auto table = HuffmanTable::build(freqs);
  EXPECT_EQ(table.symbol_count(), 256u);
  // Uniform 256-symbol alphabet: every code exactly 8 bits.
  for (int s = 0; s < 256; ++s) EXPECT_EQ(table.code_length(s), 8);
}

TEST(Huffman, LengthLimitedUnderExtremeSkew) {
  // Fibonacci-like frequencies force deep unbalanced trees; all code lengths
  // must still be <= 16 and the code must stay decodable.
  std::vector<std::uint64_t> freqs(256, 0);
  std::uint64_t a = 1, b = 1;
  for (int s = 0; s < 40; ++s) {
    freqs[static_cast<std::size_t>(s)] = a;
    const std::uint64_t next = a + b;
    a = b;
    b = next;
  }
  const auto table = HuffmanTable::build(freqs);
  for (int s = 0; s < 40; ++s) {
    EXPECT_LE(table.code_length(s), kMaxHuffmanBits) << "symbol " << s;
  }
  // Round trip with all symbols present.
  BitWriter writer;
  for (int s = 0; s < 40; ++s) table.encode(writer, s);
  const auto bytes = writer.finish();
  BitReader reader(bytes);
  for (int s = 0; s < 40; ++s) EXPECT_EQ(table.decode(reader), s);
}

TEST(Huffman, KraftInequalityHolds) {
  const auto stream = random_stream(5, 10'000, 120);
  const auto table = HuffmanTable::build(freqs_of(stream));
  double kraft = 0.0;
  for (int s = 0; s < 256; ++s) {
    if (table.has_code(s)) kraft += std::pow(2.0, -table.code_length(s));
  }
  EXPECT_LE(kraft, 1.0 + 1e-9);
}

TEST(Huffman, UncodedSymbolRejected) {
  std::vector<std::uint64_t> freqs(256, 0);
  freqs[1] = 5;
  const auto table = HuffmanTable::build(freqs);
  BitWriter writer;
  EXPECT_THROW(table.encode(writer, 2), ContractViolation);
  EXPECT_FALSE(table.has_code(2));
}

TEST(Huffman, EmptyAlphabetRejected) {
  std::vector<std::uint64_t> freqs(256, 0);
  EXPECT_THROW((void)HuffmanTable::build(freqs), ContractViolation);
}

}  // namespace
}  // namespace sccft::util
