// Discrete-event simulator, coroutine task, and TSC clock tests.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/clock.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "util/assert.hpp"

namespace sccft::sim {
namespace {

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Simulator, SameTimeFifoBySchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(100, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, CallbacksCanScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 10) sim.schedule_after(5, chain);
  };
  sim.schedule_at(0, chain);
  sim.run();
  EXPECT_EQ(fired, 10);
  EXPECT_EQ(sim.now(), 45);
}

TEST(Simulator, RunUntilAdvancesTimeEvenWithoutEvents) {
  Simulator sim;
  EXPECT_TRUE(sim.run_until(1'000));
  EXPECT_EQ(sim.now(), 1'000);
}

TEST(Simulator, RunUntilLeavesLaterEventsQueued) {
  Simulator sim;
  bool late_fired = false;
  sim.schedule_at(2'000, [&] { late_fired = true; });
  sim.run_until(1'000);
  EXPECT_FALSE(late_fired);
  EXPECT_EQ(sim.now(), 1'000);
  sim.run();
  EXPECT_TRUE(late_fired);
}

TEST(Simulator, StopHaltsProcessing) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(20, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.stopped());
}

// Regression: stop() issued between run segments used to be discarded by the
// next run()/run_until() (which reset the flag at entry). The request must be
// sticky until a run loop observes it.
TEST(Simulator, StopBetweenSegmentsIsSticky) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.stop();  // no run loop active: must not be lost
  EXPECT_TRUE(sim.stop_pending());
  EXPECT_FALSE(sim.run_until(100));  // observes the stop, dispatches nothing
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(sim.stopped());
  EXPECT_FALSE(sim.stop_pending());  // consumed by the segment that observed it
  // The next segment proceeds normally.
  EXPECT_TRUE(sim.run_until(100));
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.stopped());
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, StopConsumedOncePerSegment) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(20, [&] { ++fired; });
  sim.run();  // exits via the in-callback stop
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.stopped());
  sim.run();  // stop was consumed: the remaining event now fires
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.stopped());
}

TEST(Simulator, SchedulingInThePastRejected) {
  Simulator sim;
  sim.schedule_at(100, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(50, [] {}), util::ContractViolation);
}

TEST(Simulator, PastScheduleDiagnosticCarriesBothTimes) {
  // The rejection must name the offending timestamp AND the current virtual
  // time — a bare "scheduled into the past" leaves a campaign bisect blind.
  Simulator sim;
  sim.schedule_at(100, [] {});
  sim.run();
  try {
    sim.schedule_at(50, [] {});
    FAIL() << "schedule_at(50) with now()==100 did not throw";
  } catch (const util::ContractViolation& violation) {
    const std::string what = violation.what();
    EXPECT_NE(what.find("t=50"), std::string::npos) << what;
    EXPECT_NE(what.find("now()=100"), std::string::npos) << what;
  }
}

Task counting_task(Simulator& sim, int* counter, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    co_await Delay{sim, 10};
    ++*counter;
  }
}

TEST(Task, DelayAwaitableAdvancesSimTime) {
  Simulator sim;
  int counter = 0;
  Task task = counting_task(sim, &counter, 5);
  task.start();
  sim.run();
  EXPECT_EQ(counter, 5);
  EXPECT_EQ(sim.now(), 50);
  EXPECT_TRUE(task.done());
}

Task throwing_task(Simulator& sim) {
  co_await Delay{sim, 5};
  throw std::runtime_error("inside coroutine");
}

TEST(Task, ExceptionCapturedAndRethrown) {
  Simulator sim;
  Task task = throwing_task(sim);
  task.start();
  sim.run();
  EXPECT_TRUE(task.done());
  EXPECT_NE(task.exception(), nullptr);
  EXPECT_THROW(task.rethrow_if_failed(), std::runtime_error);
}

Task forever_task(bool* reached) {
  *reached = true;
  co_await Forever{};
  *reached = false;  // never executed
}

TEST(Task, ForeverNeverResumes) {
  Simulator sim;
  bool reached = false;
  Task task = forever_task(&reached);
  task.start();
  sim.run();
  EXPECT_TRUE(reached);
  EXPECT_FALSE(task.done());
  // Destroying a suspended task must be safe (no leak, no crash) — covered
  // by ASAN builds; here we just exercise the path.
}

TEST(Task, MoveTransfersOwnership) {
  Simulator sim;
  int counter = 0;
  Task a = counting_task(sim, &counter, 1);
  Task b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  b.start();
  sim.run();
  EXPECT_EQ(counter, 1);
}

TEST(TscClock, SynchronizationZeroesOffset) {
  TscClock clock(533e6, 3.0, 123'456);
  EXPECT_NE(clock.local_time_at(1'000'000), 1'000'000);
  clock.synchronize(1'000'000);
  EXPECT_NEAR(static_cast<double>(clock.local_time_at(1'000'000)), 1'000'000.0, 2.0);
}

TEST(TscClock, DriftAccumulatesAfterSync) {
  TscClock clock(533e6, 100.0, 0);  // 100 ppm drift
  clock.synchronize(0);
  // After 1 simulated second, a 100 ppm clock is ~100 us off.
  const auto local = clock.local_time_at(1'000'000'000);
  EXPECT_NEAR(static_cast<double>(local - 1'000'000'000), 100'000.0, 1'000.0);
}

TEST(TscClock, CyclesMatchFrequency) {
  TscClock clock(533e6, 0.0, 0);
  EXPECT_EQ(clock.cycles_at(1'000'000'000), 533'000'000u);
}

}  // namespace
}  // namespace sccft::sim
