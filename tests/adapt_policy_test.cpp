// Adaptation-policy tests (src/adapt/policy.hpp) and the weakly-hard (m,K)
// window it acts on (rtc/online/weakly_hard.hpp).
//
// The window is tested as a pure data structure: breach exactly above m
// misses in the last K checks, sliding forgiveness, and a lossless
// state round-trip (the rtc/serialize "mk-window" line rides on from_state).
//
// The policy is tested against a real simulator + channel pair + controller,
// with the monitor's stimuli synthesized directly on the trace bus: the
// graduated ladder (widen D at `widen_at` misses, grow FIFOs at
// `resize_at`), both hysteresis guards (deadband, cooldown), and the urgent
// live-occupancy floor that bypasses both.
#include <gtest/gtest.h>

#include <optional>

#include "adapt/policy.hpp"
#include "adapt/reconfig.hpp"
#include "ft/replicator.hpp"
#include "ft/selector.hpp"
#include "rtc/online/dimensioner.hpp"
#include "rtc/online/weakly_hard.hpp"
#include "sim/simulator.hpp"
#include "trace/event.hpp"
#include "util/assert.hpp"

namespace sccft::adapt {
namespace {

using ft::ReplicaIndex;
using rtc::online::AdaptationConfig;
using rtc::online::OnlineMargins;
using rtc::online::WeaklyHardParams;
using rtc::online::WeaklyHardWindow;

// --- the (m,K) window -------------------------------------------------------

TEST(WeaklyHardWindow, BreachesOnlyAboveMMissesInWindow) {
  WeaklyHardWindow window(WeaklyHardParams{.m = 2, .K = 5});
  EXPECT_FALSE(window.record(true));
  EXPECT_FALSE(window.record(true));
  EXPECT_EQ(window.misses(), 2);
  EXPECT_FALSE(window.breached());
  EXPECT_TRUE(window.record(true));  // third miss in 5 > m = 2
  EXPECT_TRUE(window.breached());
}

TEST(WeaklyHardWindow, SlidingWindowForgetsOldMisses) {
  WeaklyHardWindow window(WeaklyHardParams{.m = 1, .K = 3});
  EXPECT_FALSE(window.record(true));
  EXPECT_FALSE(window.record(false));
  EXPECT_FALSE(window.record(false));
  // The original miss has slid out: a fresh miss is again the only one.
  EXPECT_FALSE(window.record(true));
  EXPECT_EQ(window.misses(), 1);
}

TEST(WeaklyHardWindow, HitsNeverBreach) {
  WeaklyHardWindow window(WeaklyHardParams{.m = 0, .K = 8});
  for (int i = 0; i < 40; ++i) EXPECT_FALSE(window.record(false));
  EXPECT_TRUE(window.record(true));  // m = 0: first miss escalates
}

TEST(WeaklyHardWindow, StateRoundTripIsLossless) {
  WeaklyHardWindow window(WeaklyHardParams{.m = 3, .K = 7});
  const bool pattern[] = {true, false, true, true, false, false, true, false, true};
  for (const bool miss : pattern) window.record(miss);

  const WeaklyHardWindow restored = WeaklyHardWindow::from_state(
      window.params(), window.mask(), window.filled(), window.cursor());
  EXPECT_EQ(restored, window);
  EXPECT_EQ(restored.misses(), window.misses());

  // The restored window continues exactly where the original left off.
  WeaklyHardWindow a = window;
  WeaklyHardWindow b = restored;
  for (const bool miss : {true, true, false, true}) {
    EXPECT_EQ(a.record(miss), b.record(miss));
  }
  EXPECT_EQ(a, b);
}

TEST(WeaklyHardWindow, FromStateRejectsGarbage) {
  const WeaklyHardParams params{.m = 2, .K = 10};
  EXPECT_THROW(WeaklyHardWindow::from_state(params, 0, 0, 10),
               util::ContractViolation);  // cursor out of ring
  EXPECT_THROW(WeaklyHardWindow::from_state(params, 0, 11, 0),
               util::ContractViolation);  // filled > K
  EXPECT_THROW(WeaklyHardWindow::from_state(params, std::uint64_t{1} << 10, 0, 0),
               util::ContractViolation);  // mask bits beyond K
  EXPECT_THROW(WeaklyHardWindow::from_state(params, 0x3, 1, 2),
               util::ContractViolation);  // more misses than checks seen
  EXPECT_THROW(WeaklyHardWindow(WeaklyHardParams{.m = 5, .K = 5}),
               util::ContractViolation);  // m must be < K
}

// --- the policy -------------------------------------------------------------

struct PolicyRig {
  sim::Simulator sim;
  ft::ReplicatorChannel rep;
  ft::SelectorChannel sel;
  ReconfigurationController rc;

  PolicyRig(rtc::Tokens fifo1, rtc::Tokens fifo2, rtc::Tokens divergence)
      : rep(sim, "rep", {.capacity1 = fifo1, .capacity2 = fifo2}),
        sel(sim, "sel",
            {.capacity1 = 12, .capacity2 = 12, .divergence_threshold = divergence}),
        rc(sim, sim.trace(), rep, sel, {.quiesce_window = 1'000'000}) {}

  /// Synthesizes the OnlineMonitor's weakly-hard miss event.
  void miss(rtc::TimeNs at, int misses_in_window) {
    sim.trace().emit(trace::EventKind::kAcceptanceMiss, 0, at, /*replica=*/0,
                     misses_in_window, /*K=*/10);
  }
};

AdaptationConfig reactive_config() {
  AdaptationConfig config;
  config.enabled = true;
  config.deadband = 1;
  config.cooldown = 0;
  config.redimension_period = 0;  // reactive ladder only
  config.widen_at = 1;
  config.resize_at = 2;
  return config;
}

TEST(AdaptationPolicy, FirstRungWidensDivergenceOnly) {
  PolicyRig rig(2, 4, 4);
  AdaptationPolicy policy(rig.sim, rig.sim.trace(), rig.rc, reactive_config(),
                          MeasureFn{});
  rig.miss(1000, /*misses_in_window=*/1);
  EXPECT_EQ(policy.stats().widen_requests, 1u);
  EXPECT_EQ(policy.stats().resize_requests, 0u);
  rig.sim.run_until(2'000'000);
  EXPECT_EQ(rig.rc.divergence(), 6);  // 4 + 50%
  EXPECT_EQ(rig.rc.fifo1(), 2);       // FIFOs untouched at this rung
  EXPECT_EQ(rig.rc.fifo2(), 4);
}

TEST(AdaptationPolicy, SecondRungGrowsTheFifosToo) {
  PolicyRig rig(2, 4, 4);
  AdaptationPolicy policy(rig.sim, rig.sim.trace(), rig.rc, reactive_config(),
                          MeasureFn{});
  rig.miss(1000, /*misses_in_window=*/2);
  EXPECT_EQ(policy.stats().resize_requests, 1u);
  rig.sim.run_until(2'000'000);
  EXPECT_EQ(rig.rc.divergence(), 6);
  EXPECT_EQ(rig.rc.fifo1(), 3);  // 2 + max(1, 50%)
  EXPECT_EQ(rig.rc.fifo2(), 6);  // 4 + 50%
}

TEST(AdaptationPolicy, SubThresholdMissesDoNotActuate) {
  PolicyRig rig(2, 4, 4);
  AdaptationConfig config = reactive_config();
  config.widen_at = 3;
  config.resize_at = 3;
  AdaptationPolicy policy(rig.sim, rig.sim.trace(), rig.rc, config, MeasureFn{});
  rig.miss(1000, 1);
  rig.miss(2000, 2);
  EXPECT_EQ(policy.stats().misses_seen, 2u);
  EXPECT_EQ(rig.rc.stats().windows_opened, 0u);
}

TEST(AdaptationPolicy, CooldownBoundsTheActuationRate) {
  PolicyRig rig(2, 4, 4);
  AdaptationConfig config = reactive_config();
  config.cooldown = rtc::from_ms(10.0);
  AdaptationPolicy policy(rig.sim, rig.sim.trace(), rig.rc, config, MeasureFn{});

  rig.miss(0, 1);
  rig.sim.run_until(2'000'000);  // close the first window
  rig.miss(2'000'000, 1);        // inside the cooldown: suppressed
  EXPECT_EQ(rig.rc.stats().windows_opened, 1u);
  EXPECT_GE(policy.stats().suppressed_cooldown, 1u);

  rig.miss(rtc::from_ms(11.0), 1);  // cooldown expired: acts again
  EXPECT_EQ(rig.rc.stats().windows_opened, 2u);
}

TEST(AdaptationPolicy, MissesDuringAnOpenWindowAreDropped) {
  PolicyRig rig(2, 4, 4);
  AdaptationPolicy policy(rig.sim, rig.sim.trace(), rig.rc, reactive_config(),
                          MeasureFn{});
  rig.miss(0, 1);
  EXPECT_TRUE(rig.rc.window_open());
  rig.miss(500, 1);  // window still open: no second request, no busy bump
  EXPECT_EQ(policy.stats().widen_requests, 1u);
  EXPECT_EQ(rig.rc.stats().rejected_busy, 0u);
}

TEST(AdaptationPolicy, BreachesAreWitnessedNotActedOn) {
  PolicyRig rig(2, 4, 4);
  AdaptationPolicy policy(rig.sim, rig.sim.trace(), rig.rc, reactive_config(),
                          MeasureFn{});
  rig.sim.trace().emit(trace::EventKind::kCurveViolation, 0, 1000, 0, 0, 0);
  EXPECT_EQ(policy.stats().breaches_seen, 1u);
  EXPECT_EQ(rig.rc.stats().windows_opened, 0u);  // conviction is rung 3's job
}

TEST(AdaptationPolicy, ProactiveTickTracksMeasuredDemand) {
  PolicyRig rig(2, 4, 4);
  AdaptationConfig config = reactive_config();
  config.redimension_period = rtc::from_ms(20.0);
  MeasureFn measure = [](rtc::TimeNs) -> std::optional<OnlineMargins> {
    OnlineMargins margins;
    margins.measured_fifo1 = 8;
    margins.measured_fifo2 = 8;
    margins.measured_divergence = 10;
    return margins;
  };
  AdaptationPolicy policy(rig.sim, rig.sim.trace(), rig.rc, config,
                          std::move(measure));
  policy.start();
  rig.sim.run_until(rtc::from_ms(22.0));
  EXPECT_EQ(policy.stats().proactive_requests, 1u);
  // measured + headroom (4), above the empty-channel floors.
  EXPECT_EQ(rig.rc.fifo1(), 12);
  EXPECT_EQ(rig.rc.fifo2(), 12);
  EXPECT_EQ(rig.rc.divergence(), 14);
}

TEST(AdaptationPolicy, DeadbandHoldsSmallCorrections) {
  // Installed sizes sit one token off the measured demand + headroom; the
  // deadband (2) must swallow the whole request.
  PolicyRig rig(13, 12, 9);
  AdaptationConfig config = reactive_config();
  config.deadband = 2;
  config.redimension_period = rtc::from_ms(20.0);
  MeasureFn measure = [](rtc::TimeNs) -> std::optional<OnlineMargins> {
    OnlineMargins margins;
    margins.measured_fifo1 = 8;   // target 12, installed 13
    margins.measured_fifo2 = 8;   // target 12, installed 12
    margins.measured_divergence = 4;  // target 8, installed 9
    return margins;
  };
  AdaptationPolicy policy(rig.sim, rig.sim.trace(), rig.rc, config,
                          std::move(measure));
  policy.start();
  rig.sim.run_until(rtc::from_ms(22.0));
  EXPECT_EQ(rig.rc.stats().windows_opened, 0u);
  EXPECT_EQ(policy.stats().suppressed_deadband, 2u);
  EXPECT_EQ(rig.rc.fifo1(), 13);
  EXPECT_EQ(rig.rc.divergence(), 9);
}

TEST(AdaptationPolicy, OccupancyFloorOverridesEveryHysteresisGuard) {
  // The installed |F1| has decayed inside the live-occupancy floor
  // (fill + 1 + headroom). Even under a cooldown that would otherwise gate
  // actuation for seconds, the repair must go out on the next tick —
  // delaying it is what lets the next token convict.
  PolicyRig rig(2, 8, 9);
  AdaptationConfig config = reactive_config();
  config.cooldown = rtc::from_sec(10.0);
  config.redimension_period = rtc::from_ms(20.0);
  MeasureFn measure = [](rtc::TimeNs) -> std::optional<OnlineMargins> {
    OnlineMargins margins;
    margins.measured_fifo1 = 1;  // the curves see low demand...
    return margins;
  };
  AdaptationPolicy policy(rig.sim, rig.sim.trace(), rig.rc, config,
                          std::move(measure));

  rig.miss(0, 1);  // an action at t=0 arms the cooldown
  ASSERT_EQ(rig.rc.stats().windows_opened, 1u);

  // ...but the queue is physically full: floor = 2 + 1 + 4 = 7.
  for (std::uint64_t seq = 0; seq < 2; ++seq) {
    ASSERT_TRUE(rig.rep.try_write(kpn::Token(
        std::vector<std::uint8_t>{static_cast<std::uint8_t>(seq)}, seq, 0)));
  }
  policy.start();
  rig.sim.run_until(rtc::from_ms(22.0));
  EXPECT_GE(policy.stats().floor_overrides, 1u);
  EXPECT_EQ(policy.stats().proactive_requests, 1u);
  EXPECT_EQ(rig.rc.fifo1(), 7);
  EXPECT_FALSE(rig.rep.fault(ReplicaIndex::kReplica1));
}

TEST(AdaptationPolicy, ConstructorValidatesTheLadder) {
  PolicyRig rig(2, 4, 4);
  AdaptationConfig bad = reactive_config();
  bad.widen_at = 0;
  EXPECT_THROW(AdaptationPolicy(rig.sim, rig.sim.trace(), rig.rc, bad, MeasureFn{}),
               util::ContractViolation);
  bad = reactive_config();
  bad.resize_at = 1;
  bad.widen_at = 2;  // resize rung below the widen rung
  EXPECT_THROW(AdaptationPolicy(rig.sim, rig.sim.trace(), rig.rc, bad, MeasureFn{}),
               util::ContractViolation);
  bad = reactive_config();
  bad.window.K = 65;  // ring no longer fits one word
  EXPECT_THROW(AdaptationPolicy(rig.sim, rig.sim.trace(), rig.rc, bad, MeasureFn{}),
               util::ContractViolation);
}

}  // namespace
}  // namespace sccft::adapt
