// Statistics collector tests.
#include <gtest/gtest.h>

#include "util/assert.hpp"
#include "util/stats.hpp"

namespace sccft::util {
namespace {

TEST(StreamingStats, BasicMoments) {
  StreamingStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_NEAR(stats.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(StreamingStats, EmptyQueriesRejected) {
  StreamingStats stats;
  EXPECT_TRUE(stats.empty());
  EXPECT_THROW((void)stats.mean(), ContractViolation);
  EXPECT_THROW((void)stats.min(), ContractViolation);
}

TEST(StreamingStats, SingleSample) {
  StreamingStats stats;
  stats.add(3.5);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.5);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(StreamingStats, MergeEqualsSequential) {
  StreamingStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double v = i * 0.7 - 3.0;
    (i % 2 == 0 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StreamingStats, MergeWithEmpty) {
  StreamingStats a, empty;
  a.add(1.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(SampleSet, ExactPercentiles) {
  SampleSet set;
  for (int i = 1; i <= 100; ++i) set.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(set.min(), 1.0);
  EXPECT_DOUBLE_EQ(set.max(), 100.0);
  EXPECT_DOUBLE_EQ(set.median(), 50.5);
  EXPECT_NEAR(set.percentile(95.0), 95.05, 1e-9);
  EXPECT_DOUBLE_EQ(set.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(set.percentile(100.0), 100.0);
}

TEST(SampleSet, AddAfterSortInvalidatesCache) {
  SampleSet set;
  set.add(10.0);
  EXPECT_DOUBLE_EQ(set.max(), 10.0);
  set.add(20.0);
  EXPECT_DOUBLE_EQ(set.max(), 20.0);  // cache refreshed
}

TEST(SampleSet, StddevMatchesStreaming) {
  SampleSet set;
  StreamingStats stream;
  for (int i = 0; i < 40; ++i) {
    const double v = (i * 37 % 11) * 1.5;
    set.add(v);
    stream.add(v);
  }
  EXPECT_NEAR(set.stddev(), stream.stddev(), 1e-9);
  EXPECT_NEAR(set.mean(), stream.mean(), 1e-12);
}

TEST(SampleSet, EmptyRejected) {
  SampleSet set;
  EXPECT_THROW((void)set.percentile(50.0), ContractViolation);
}

TEST(SampleSet, SingleSamplePinsAllPercentiles) {
  SampleSet set;
  set.add(7.25);
  EXPECT_DOUBLE_EQ(set.percentile(0.0), 7.25);
  EXPECT_DOUBLE_EQ(set.median(), 7.25);
  EXPECT_DOUBLE_EQ(set.percentile(99.0), 7.25);
  EXPECT_DOUBLE_EQ(set.min(), 7.25);
  EXPECT_DOUBLE_EQ(set.max(), 7.25);
  EXPECT_DOUBLE_EQ(set.stddev(), 0.0);
}

TEST(SampleSet, MergeEqualsSequential) {
  SampleSet a, b, all;
  for (int i = 0; i < 60; ++i) {
    const double v = (i * 31 % 17) * 0.5 - 2.0;
    (i % 3 == 0 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.median(), all.median());
  EXPECT_DOUBLE_EQ(a.percentile(95.0), all.percentile(95.0));
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SampleSet, MergeWithEmptySides) {
  SampleSet a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);  // merging an empty set is a no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.median(), 2.0);
  empty.merge(a);  // merging into an empty set copies it
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.max(), 3.0);
}

TEST(SampleSet, MergeInvalidatesSortCache) {
  SampleSet a, b;
  a.add(10.0);
  EXPECT_DOUBLE_EQ(a.max(), 10.0);  // forces the sorted cache
  b.add(20.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.max(), 20.0);  // cache refreshed after merge
}

TEST(Format, FixedPrecision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(Format, SiPrefixes) {
  EXPECT_EQ(format_si(1'500.0, "B", 1), "1.5 kB");
  EXPECT_EQ(format_si(2'000'000.0, "B/s", 0), "2 MB/s");
  EXPECT_EQ(format_si(12.0, "B", 0), "12 B");
}

}  // namespace
}  // namespace sccft::util
