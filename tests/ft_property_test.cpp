// Randomized property tests for the arbitration channels.
//
// Invariants checked over thousands of random (but per-interface FIFO-
// ordered) interleavings of writes, reads, faults, and recoveries:
//   P1  the consumer stream is exactly 0, 1, 2, ... — no gap, no duplicate,
//       no reordering — as long as at least one replica stays healthy;
//   P2  the selector's space accounting never goes negative and writes block
//       exactly when space_i == 0 (isolation);
//   P3  the replicator never blocks the producer and never exceeds queue
//       capacities;
//   P4  a detection, when it happens, always blames a replica that actually
//       fell behind.
#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "ft/replicator.hpp"
#include "ft/selector.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace sccft::ft {
namespace {

using kpn::Token;

Token make_token(std::uint64_t seq) {
  return Token(std::vector<std::uint8_t>{static_cast<std::uint8_t>(seq & 0xFF),
                                         static_cast<std::uint8_t>((seq >> 8) & 0xFF)},
               seq, 0);
}

class SelectorRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SelectorRandomized, StreamIntegrityUnderRandomInterleavings) {
  util::Xoshiro256 rng(GetParam());
  sim::Simulator sim;
  // Self-consistent sizing: the schedule lets either replica lead by up to 5
  // tokens (= D - 1), so the stall tolerances |S_i|_0 must be >= 5 (in a real
  // design Eq. (4) guarantees exactly this relationship).
  SelectorChannel selector(sim, "sel",
                           {.capacity1 = 8,
                            .capacity2 = 9,
                            .initial1 = 5,
                            .initial2 = 5,
                            .divergence_threshold = 6,
                            .enable_stall_rule = true});
  auto& w1 = selector.write_interface(ReplicaIndex::kReplica1);
  auto& w2 = selector.write_interface(ReplicaIndex::kReplica2);

  // Each interface delivers tokens 0,1,2,... in order at random paces; the
  // consumer reads at a random pace. A replica may die mid-run.
  std::uint64_t next1 = 0;
  std::uint64_t next2 = 0;
  std::uint64_t expected = 0;
  bool r1_dead = false;
  const bool kill_r1 = rng.chance(0.5);
  const std::uint64_t kill_at = 20 + static_cast<std::uint64_t>(rng.uniform_int(0, 30));

  for (int step = 0; step < 600; ++step) {
    const int action = static_cast<int>(rng.uniform_int(0, 2));
    if (action == 0 && !r1_dead) {
      // Keep the legal lead bounded: a conforming replica never runs more
      // than D-1 tokens ahead of its peer.
      if (next1 < next2 + 5 && w1.try_write(make_token(next1))) ++next1;
      if (kill_r1 && next1 >= kill_at) r1_dead = true;
    } else if (action == 1) {
      if (next2 < next1 + 5 || r1_dead) {
        if (w2.try_write(make_token(next2))) ++next2;
      }
    } else {
      if (auto token = selector.try_read()) {
        ASSERT_EQ(token->seq(), expected)
            << "gap/duplicate/reorder at step " << step << " (seed " << GetParam()
            << ")";
        ++expected;
      }
    }
    // P2: space counters within [0, capacity + slack-from-reads].
    ASSERT_GE(selector.space(ReplicaIndex::kReplica1), 0);
    ASSERT_GE(selector.space(ReplicaIndex::kReplica2), 0);
    // P4: replica 2 is never blamed while it is the healthy leader.
    if (r1_dead) {
      ASSERT_FALSE(selector.fault(ReplicaIndex::kReplica2));
    }
  }
  // Everything enqueued was eventually readable in order.
  while (auto token = selector.try_read()) {
    ASSERT_EQ(token->seq(), expected);
    ++expected;
  }
  EXPECT_EQ(expected, std::max(next1, next2));
}

TEST_P(SelectorRandomized, DivergenceRuleNeverMisfiresWithinBound) {
  util::Xoshiro256 rng(GetParam() ^ 0xABCDEF);
  sim::Simulator sim;
  const rtc::Tokens d = 4;
  SelectorChannel selector(sim, "sel",
                           {.capacity1 = 8,
                            .capacity2 = 8,
                            .initial1 = 4,
                            .initial2 = 4,
                            .divergence_threshold = d,
                            .enable_stall_rule = false});
  auto& w1 = selector.write_interface(ReplicaIndex::kReplica1);
  auto& w2 = selector.write_interface(ReplicaIndex::kReplica2);
  std::uint64_t next1 = 0;
  std::uint64_t next2 = 0;
  for (int step = 0; step < 800; ++step) {
    const int action = static_cast<int>(rng.uniform_int(0, 2));
    // Keep |W1 - W2| <= d-1 at all times (legal divergence).
    if (action == 0 && next1 < next2 + static_cast<std::uint64_t>(d) - 1) {
      if (w1.try_write(make_token(next1))) ++next1;
    } else if (action == 1 && next2 < next1 + static_cast<std::uint64_t>(d) - 1) {
      if (w2.try_write(make_token(next2))) ++next2;
    } else {
      (void)selector.try_read();
    }
    ASSERT_FALSE(selector.fault(ReplicaIndex::kReplica1)) << "seed " << GetParam();
    ASSERT_FALSE(selector.fault(ReplicaIndex::kReplica2)) << "seed " << GetParam();
  }
}

class ReplicatorRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReplicatorRandomized, NeverBlocksProducerNorOverfills) {
  util::Xoshiro256 rng(GetParam());
  sim::Simulator sim;
  const rtc::Tokens cap1 = 2 + rng.uniform_int(0, 2);
  const rtc::Tokens cap2 = 2 + rng.uniform_int(0, 3);
  ReplicatorChannel replicator(sim, "rep", {cap1, cap2, std::nullopt, std::nullopt});
  auto& r1 = replicator.read_interface(ReplicaIndex::kReplica1);
  auto& r2 = replicator.read_interface(ReplicaIndex::kReplica2);

  std::uint64_t seq = 0;
  std::uint64_t got1 = 0;
  std::uint64_t got2 = 0;
  bool r1_dead = rng.chance(0.3);
  for (int step = 0; step < 800; ++step) {
    switch (rng.uniform_int(0, 2)) {
      case 0:
        // P3: the producer's write always completes.
        ASSERT_TRUE(replicator.try_write(make_token(seq)));
        ++seq;
        // Replica 2 keeps up (a conforming consumer never lets its queue
        // overflow): drain after every write.
        while (auto token = r2.try_read()) {
          ASSERT_EQ(token->seq(), got2) << "R2 queue reordered";
          ++got2;
        }
        break;
      case 1:
        if (!r1_dead) {
          if (auto token = r1.try_read()) {
            ASSERT_EQ(token->seq(), got1) << "R1 queue reordered";
            ++got1;
          }
        }
        break;
      default:
        if (auto token = r2.try_read()) {
          ASSERT_EQ(token->seq(), got2) << "R2 queue reordered";
          ++got2;
        }
        break;
    }
    ASSERT_LE(replicator.fill(ReplicaIndex::kReplica1), cap1);
    ASSERT_LE(replicator.fill(ReplicaIndex::kReplica2), cap2);
    // P4: the keeping-up replica is never blamed.
    ASSERT_FALSE(replicator.fault(ReplicaIndex::kReplica2));
  }
  // A dead reader's queue must have been detected once enough writes passed.
  if (r1_dead && seq >= static_cast<std::uint64_t>(cap1) + 1) {
    EXPECT_TRUE(replicator.fault(ReplicaIndex::kReplica1)) << "seed " << GetParam();
  }
}

TEST_P(ReplicatorRandomized, RecoveryCycleKeepsInvariants) {
  util::Xoshiro256 rng(GetParam() ^ 0x5EED);
  sim::Simulator sim;
  ReplicatorChannel replicator(sim, "rep", {3, 3, std::nullopt, std::nullopt});
  auto& r1 = replicator.read_interface(ReplicaIndex::kReplica1);
  auto& r2 = replicator.read_interface(ReplicaIndex::kReplica2);
  std::uint64_t seq = 0;
  std::optional<std::uint64_t> r1_resume_seq;  // first seq after reintegration
  std::uint64_t got1 = 0;
  bool r1_dead = false;
  for (int cycle = 0; cycle < 6; ++cycle) {
    // Healthy phase.
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(replicator.try_write(make_token(seq++)));
      if (auto token = r1.try_read()) {
        if (r1_resume_seq) {
          ASSERT_GE(token->seq(), *r1_resume_seq) << "stale token after rejoin";
        }
        ++got1;
      }
      (void)r2.try_read();
    }
    // Kill and detect replica 1.
    r1_dead = true;
    replicator.freeze_reader(ReplicaIndex::kReplica1);
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(replicator.try_write(make_token(seq++)));
      (void)r2.try_read();
    }
    EXPECT_TRUE(replicator.fault(ReplicaIndex::kReplica1));
    // Reintegrate.
    replicator.reintegrate(ReplicaIndex::kReplica1);
    r1_resume_seq = seq;  // only tokens written from now on may appear
    r1_dead = false;
    (void)r1_dead;
  }
  EXPECT_GT(got1, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectorRandomized,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));
INSTANTIATE_TEST_SUITE_P(Seeds, ReplicatorRandomized,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace sccft::ft
