// Integration tests: full reference/duplicated networks of all three paper
// applications on the simulated SCC. Validates the paper's core claims:
//   - fault-free runs trigger no detector (no false positives),
//   - observed FIFO fills stay within the Eq. (3)/(4) capacities,
//   - Theorem 2: duplicated output == reference output (values), and the
//     consumer timing statistics match,
//   - injected silence faults are detected within the Section 3.4 bounds,
//     with the correct replica blamed,
//   - both fault assignments (R1 or R2 faulty) are tolerated.
#include <gtest/gtest.h>

#include "apps/adpcm/app.hpp"
#include "apps/h264/app.hpp"
#include "apps/mjpeg/app.hpp"
#include "apps/common/experiment.hpp"

namespace sccft::apps {
namespace {

// ADPCM is the fastest app (6.3 ms period); use it for the heavier sweeps and
// run the larger apps with fewer periods.
ExperimentOptions fast_options() {
  ExperimentOptions options;
  options.seed = 7;
  options.run_periods = 80;
  options.fault_after_periods = 40;
  return options;
}

class ExperimentTest : public ::testing::TestWithParam<const char*> {
 protected:
  static ApplicationSpec spec_for(const std::string& name) {
    if (name == "mjpeg") return mjpeg::make_application();
    if (name == "adpcm") return adpcm::make_application();
    return h264::make_application();
  }
};

TEST_P(ExperimentTest, FaultFreeRunHasNoFalsePositives) {
  ExperimentRunner runner(spec_for(GetParam()));
  auto options = fast_options();
  options.inject_fault = false;
  const auto result = runner.run(options);
  EXPECT_FALSE(result.any_detection) << "false positive detection";
  EXPECT_GT(result.consumer_tokens, 0u);
}

TEST_P(ExperimentTest, ObservedFillsWithinTheoreticalCapacities) {
  ExperimentRunner runner(spec_for(GetParam()));
  auto options = fast_options();
  options.inject_fault = false;
  const auto result = runner.run(options);
  EXPECT_LE(result.fill_r1, result.sizing.replicator_capacity1);
  EXPECT_LE(result.fill_r2, result.sizing.replicator_capacity2);
  EXPECT_LE(result.fill_s1, result.sizing.selector_capacity1);
  EXPECT_LE(result.fill_s2, result.sizing.selector_capacity2);
}

TEST_P(ExperimentTest, Theorem2FunctionalEquivalence) {
  ExperimentRunner runner(spec_for(GetParam()));
  auto options = fast_options();
  options.inject_fault = false;

  options.duplicated = false;
  const auto reference = runner.run(options);
  options.duplicated = true;
  const auto duplicated = runner.run(options);

  ASSERT_GT(reference.output_checksums.size(), 10u);
  ASSERT_GT(duplicated.output_checksums.size(), 10u);
  // The two runs may deliver different token counts by the horizon; compare
  // the common prefix (Theorem 2 is about stream prefixes).
  const std::size_t n =
      std::min(reference.output_checksums.size(), duplicated.output_checksums.size());
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(reference.output_checksums[i], duplicated.output_checksums[i])
        << "stream diverges at token " << i;
  }
}

TEST_P(ExperimentTest, Theorem2TimingEquivalence) {
  ExperimentRunner runner(spec_for(GetParam()));
  auto options = fast_options();
  options.inject_fault = false;

  options.duplicated = false;
  const auto reference = runner.run(options);
  options.duplicated = true;
  const auto duplicated = runner.run(options);

  // Consumer inter-arrival statistics nearly identical (paper: "the decoded
  // frame rate is almost identical ... for both the reference and the
  // duplicated process networks").
  ASSERT_FALSE(reference.consumer_interarrival_ms.empty());
  ASSERT_FALSE(duplicated.consumer_interarrival_ms.empty());
  const double period_ms = rtc::to_ms(runner.app().timing.producer.period);
  EXPECT_NEAR(reference.consumer_interarrival_ms.mean(),
              duplicated.consumer_interarrival_ms.mean(), 0.1 * period_ms);
}

TEST_P(ExperimentTest, SilenceFaultDetectedWithinBounds) {
  ExperimentRunner runner(spec_for(GetParam()));
  for (const auto faulty : {ft::ReplicaIndex::kReplica1, ft::ReplicaIndex::kReplica2}) {
    auto options = fast_options();
    options.inject_fault = true;
    options.faulty_replica = faulty;
    const auto result = runner.run(options);

    ASSERT_TRUE(result.any_detection)
        << "fault in " << ft::to_string(faulty) << " not detected";
    EXPECT_FALSE(result.false_positive);
    EXPECT_TRUE(result.correct_replica);
    ASSERT_TRUE(result.replicator_latency.has_value());
    EXPECT_LE(*result.replicator_latency, result.sizing.replicator_overflow_bound);
    ASSERT_TRUE(result.selector_latency.has_value());
    EXPECT_LE(*result.selector_latency, result.sizing.selector_latency_bound);
  }
}

TEST_P(ExperimentTest, ConsumerKeepsReceivingAfterFault) {
  ExperimentRunner runner(spec_for(GetParam()));
  auto options = fast_options();
  options.inject_fault = true;
  options.run_periods = 120;

  const auto faulted = runner.run(options);
  options.inject_fault = false;
  const auto clean = runner.run(options);

  // Fault tolerance: the output stream continues across the fault — nearly
  // as many tokens as the fault-free run, and the same values.
  EXPECT_GE(faulted.output_checksums.size() + 3, clean.output_checksums.size());
  const std::size_t n =
      std::min(faulted.output_checksums.size(), clean.output_checksums.size());
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(faulted.output_checksums[i], clean.output_checksums[i])
        << "output corrupted at token " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllApplications, ExperimentTest,
                         ::testing::Values("mjpeg", "adpcm", "h264"));

TEST(ExperimentExtras, RateDegradationFaultDetected) {
  ExperimentRunner runner(adpcm::make_application());
  auto options = fast_options();
  options.inject_fault = true;
  options.fault_mode = ft::FaultMode::kRateDegradation;
  options.rate_factor = 6.0;
  options.run_periods = 160;
  const auto result = runner.run(options);
  EXPECT_TRUE(result.any_detection) << "degraded replica never detected";
  EXPECT_TRUE(result.correct_replica);
}

TEST(ExperimentExtras, DistanceFunctionLatencyQuantizedByPollingInterval) {
  // Paper "Brief Discussion": the distance-function baseline's detection
  // latency is set by its polling interval (it needs runtime timers); our
  // approach has no timer and is unaffected by any polling choice.
  ExperimentRunner runner(minimize_replica_jitter(adpcm::make_application()));
  auto options = fast_options();
  options.inject_fault = true;
  options.attach_baseline_monitors = true;
  options.run_periods = 160;

  options.monitor_polling_interval = rtc::from_ms(1.0);
  const auto fine = runner.run(options);
  options.monitor_polling_interval = rtc::from_ms(25.0);
  const auto coarse = runner.run(options);

  ASSERT_TRUE(fine.distance_latency.has_value());
  ASSERT_TRUE(coarse.distance_latency.has_value());
  ASSERT_TRUE(fine.replicator_latency.has_value());
  ASSERT_TRUE(coarse.replicator_latency.has_value());
  // Coarser polling => strictly later baseline detection...
  EXPECT_GT(*coarse.distance_latency, *fine.distance_latency);
  // ...while our (timer-free) detection latency is identical in both runs.
  EXPECT_EQ(*coarse.replicator_latency, *fine.replicator_latency);
  // Both detect within the same order of magnitude (a few periods).
  EXPECT_LT(*fine.distance_latency, 4 * runner.app().timing.producer.period);
  EXPECT_LT(*fine.replicator_latency, 4 * runner.app().timing.producer.period);
}

TEST(ExperimentExtras, WatchdogDetectsSilence) {
  ExperimentRunner runner(minimize_replica_jitter(adpcm::make_application()));
  auto options = fast_options();
  options.inject_fault = true;
  options.attach_baseline_monitors = true;
  options.run_periods = 160;
  const auto result = runner.run(options);
  ASSERT_TRUE(result.watchdog_latency.has_value());
  EXPECT_GT(*result.watchdog_latency, 0);
}

TEST(ExperimentExtras, DeterministicReruns) {
  ExperimentRunner runner(adpcm::make_application());
  auto options = fast_options();
  options.inject_fault = true;
  const auto a = runner.run(options);
  const auto b = runner.run(options);
  ASSERT_TRUE(a.first_latency.has_value());
  ASSERT_TRUE(b.first_latency.has_value());
  EXPECT_EQ(*a.first_latency, *b.first_latency);
  EXPECT_EQ(a.output_checksums, b.output_checksums);
}

TEST(ExperimentExtras, IdealChannelsAlsoWork) {
  ExperimentRunner runner(adpcm::make_application());
  auto options = fast_options();
  options.use_platform = false;
  options.inject_fault = true;
  const auto result = runner.run(options);
  EXPECT_TRUE(result.any_detection);
}

TEST(ExperimentExtras, TopologyRendersBothShapes) {
  ExperimentRunner runner(mjpeg::make_application());
  const std::string duplicated = runner.render_topology(true);
  const std::string reference = runner.render_topology(false);
  EXPECT_NE(duplicated.find("r1.split"), std::string::npos);
  EXPECT_NE(duplicated.find("r2.merge"), std::string::npos);
  EXPECT_NE(reference.find("F_P"), std::string::npos);
  EXPECT_EQ(reference.find("r2"), std::string::npos);
}

}  // namespace
}  // namespace sccft::apps
