// N-replica channel tests: sizing generalization, arbitration with N
// interfaces, and tolerance of multiple sequential faults.
#include <gtest/gtest.h>

#include <vector>

#include "ft/nreplica.hpp"
#include "kpn/network.hpp"
#include "kpn/process.hpp"
#include "rtc/pjd.hpp"
#include "util/assert.hpp"

namespace sccft::ft {
namespace {

using kpn::Token;

Token make_token(std::uint64_t seq) {
  return Token(std::vector<std::uint8_t>{static_cast<std::uint8_t>(seq & 0xFF),
                                         static_cast<std::uint8_t>(seq >> 8)},
               seq, 0);
}

NReplicaTimingModel make_model(const std::vector<rtc::PJD>& replicas,
                               const rtc::PJD& producer, const rtc::PJD& consumer) {
  NReplicaTimingModel model;
  model.producer_upper = rtc::make_curve<rtc::PJDUpperCurve>(producer);
  model.producer_lower = rtc::make_curve<rtc::PJDLowerCurve>(producer);
  model.consumer_upper = rtc::make_curve<rtc::PJDUpperCurve>(consumer);
  model.consumer_lower = rtc::make_curve<rtc::PJDLowerCurve>(consumer);
  for (const auto& pjd : replicas) {
    model.in_upper.push_back(rtc::make_curve<rtc::PJDUpperCurve>(pjd));
    model.in_lower.push_back(rtc::make_curve<rtc::PJDLowerCurve>(pjd));
    model.out_upper.push_back(rtc::make_curve<rtc::PJDUpperCurve>(pjd));
    model.out_lower.push_back(rtc::make_curve<rtc::PJDLowerCurve>(pjd));
  }
  return model;
}

TEST(NSizing, TwoReplicaCaseMatchesPairAnalysis) {
  // The N=2 analysis must agree with the dedicated two-replica analysis for
  // the MJPEG models.
  const auto producer = rtc::PJD::from_ms(30, 2, 30);
  const auto consumer = rtc::PJD::from_ms(30, 2, 30);
  const auto r1 = rtc::PJD::from_ms(30, 5, 30);
  const auto r2 = rtc::PJD::from_ms(30, 30, 30);
  const auto report = analyze_n_replica_network(make_model({r1, r2}, producer, consumer),
                                                rtc::from_ms(5000.0));
  EXPECT_EQ(report.replicator_capacity, (std::vector<rtc::Tokens>{2, 3}));
  EXPECT_EQ(report.selector_capacity, (std::vector<rtc::Tokens>{4, 6}));
  EXPECT_EQ(report.selector_initial, (std::vector<rtc::Tokens>{2, 3}));
  EXPECT_EQ(report.divergence_threshold, 4);
  EXPECT_EQ(report.selector_latency_bound, rtc::from_ms(240.0));
  EXPECT_EQ(report.replicator_overflow_bound, rtc::from_ms(122.0));
}

TEST(NSizing, ThresholdSetByWorstPair) {
  const auto producer = rtc::PJD::from_ms(10, 1, 10);
  const auto consumer = rtc::PJD::from_ms(10, 1, 10);
  const auto tight = rtc::PJD::from_ms(10, 2, 10);
  const auto loose = rtc::PJD::from_ms(10, 20, 10);
  const auto pair = analyze_n_replica_network(
      make_model({tight, loose}, producer, consumer), rtc::from_ms(5000.0));
  const auto triple = analyze_n_replica_network(
      make_model({tight, tight, loose}, producer, consumer), rtc::from_ms(5000.0));
  // Adding another tight replica cannot worsen the worst pair.
  EXPECT_EQ(triple.divergence_threshold, pair.divergence_threshold);
  EXPECT_EQ(triple.replicator_capacity.size(), 3u);
}

TEST(NSizing, RejectsSingleReplica) {
  const auto producer = rtc::PJD::from_ms(10, 1, 10);
  EXPECT_THROW(
      (void)analyze_n_replica_network(make_model({producer}, producer, producer),
                                      rtc::from_ms(1000.0)),
      util::ContractViolation);
}

struct Fixture {
  sim::Simulator sim;
  kpn::Network net{sim};
  NReplicatorChannel* replicator = nullptr;
  NSelectorChannel* selector = nullptr;

  explicit Fixture(int replicas) {
    std::vector<rtc::Tokens> rep_caps(static_cast<std::size_t>(replicas), 3);
    replicator = &net.adopt_channel(
        std::make_unique<NReplicatorChannel>(sim, "nrep", rep_caps));
    NSelectorChannel::Config config;
    config.capacities.assign(static_cast<std::size_t>(replicas), 6);
    config.initials.assign(static_cast<std::size_t>(replicas), 3);
    config.divergence_threshold = 4;
    selector = &net.adopt_channel(
        std::make_unique<NSelectorChannel>(sim, "nsel", std::move(config)));
  }
};

TEST(NReplicator, DuplicatesToAllQueues) {
  Fixture fx(3);
  ASSERT_TRUE(fx.replicator->try_write(make_token(0)));
  for (int r = 0; r < 3; ++r) EXPECT_EQ(fx.replicator->fill(r), 1);
  for (int r = 0; r < 3; ++r) {
    auto token = fx.replicator->read_interface(r).try_read();
    ASSERT_TRUE(token.has_value());
    EXPECT_EQ(token->seq(), 0u);
  }
}

TEST(NReplicator, OverflowFlagsOnlyTheDeadQueue) {
  Fixture fx(3);
  // Queues 1 and 2 drain; queue 0 never reads.
  for (std::uint64_t k = 0; k < 5; ++k) {
    ASSERT_TRUE(fx.replicator->try_write(make_token(k)));
    for (int r = 1; r < 3; ++r) (void)fx.replicator->read_interface(r).try_read();
  }
  EXPECT_TRUE(fx.replicator->fault(0));
  EXPECT_FALSE(fx.replicator->fault(1));
  EXPECT_FALSE(fx.replicator->fault(2));
  EXPECT_EQ(fx.replicator->healthy_count(), 2);
}

TEST(NReplicator, ToleratesTwoSequentialFaults) {
  Fixture fx(3);
  std::vector<std::uint64_t> survivor;
  std::uint64_t k = 0;
  auto drain = [&](int r) {
    while (auto token = fx.replicator->read_interface(r).try_read()) {
      if (r == 2) survivor.push_back(token->seq());
    }
  };
  // Phase 1: all healthy for 4 tokens.
  for (; k < 4; ++k) {
    ASSERT_TRUE(fx.replicator->try_write(make_token(k)));
    for (int r = 0; r < 3; ++r) drain(r);
  }
  // Phase 2: replica 0 dies (stops reading).
  for (; k < 10; ++k) {
    ASSERT_TRUE(fx.replicator->try_write(make_token(k)));
    for (int r = 1; r < 3; ++r) drain(r);
  }
  EXPECT_TRUE(fx.replicator->fault(0));
  // Phase 3: replica 1 dies too.
  for (; k < 16; ++k) {
    ASSERT_TRUE(fx.replicator->try_write(make_token(k)));
    drain(2);
  }
  EXPECT_TRUE(fx.replicator->fault(1));
  EXPECT_FALSE(fx.replicator->fault(2));
  // The survivor saw every token.
  ASSERT_EQ(survivor.size(), 16u);
  for (std::uint64_t i = 0; i < survivor.size(); ++i) EXPECT_EQ(survivor[i], i);
}

TEST(NSelector, FirstOfGroupWinsAcrossThreeWriters) {
  Fixture fx(3);
  std::vector<std::uint64_t> consumed;
  auto drain = [&] {
    while (auto token = fx.selector->try_read()) consumed.push_back(token->seq());
  };
  // Different leaders per group: 1 first for group 0, 2 first for group 1,
  // 0 first for group 2; every later duplicate must be dropped.
  ASSERT_TRUE(fx.selector->write_interface(1).try_write(make_token(0)));
  ASSERT_TRUE(fx.selector->write_interface(0).try_write(make_token(0)));
  ASSERT_TRUE(fx.selector->write_interface(2).try_write(make_token(0)));
  drain();
  ASSERT_TRUE(fx.selector->write_interface(2).try_write(make_token(1)));
  ASSERT_TRUE(fx.selector->write_interface(1).try_write(make_token(1)));
  ASSERT_TRUE(fx.selector->write_interface(0).try_write(make_token(1)));
  drain();
  ASSERT_TRUE(fx.selector->write_interface(0).try_write(make_token(2)));
  ASSERT_TRUE(fx.selector->write_interface(2).try_write(make_token(2)));
  ASSERT_TRUE(fx.selector->write_interface(1).try_write(make_token(2)));
  drain();
  EXPECT_EQ(consumed, (std::vector<std::uint64_t>{0, 1, 2}));
  EXPECT_EQ(fx.selector->stats().tokens_dropped, 6u);
}

TEST(NSelector, DivergenceConvictsLaggards) {
  Fixture fx(3);
  // Interface 0 delivers; 1 and 2 silent. After D = 4 tokens, both laggards
  // are convicted (but never the leader).
  for (std::uint64_t k = 0; k < 5; ++k) {
    ASSERT_TRUE(fx.selector->write_interface(0).try_write(make_token(k)));
    (void)fx.selector->try_read();
  }
  EXPECT_FALSE(fx.selector->fault(0));
  EXPECT_TRUE(fx.selector->fault(1));
  EXPECT_TRUE(fx.selector->fault(2));
  EXPECT_EQ(fx.selector->healthy_count(), 1);
}

TEST(NSelector, NeverConvictsLastHealthyReplica) {
  Fixture fx(2);
  for (std::uint64_t k = 0; k < 20; ++k) {
    ASSERT_TRUE(fx.selector->write_interface(0).try_write(make_token(k)));
    (void)fx.selector->try_read();
  }
  // Interface 1 convicted; interface 0 must survive no matter the counters.
  EXPECT_TRUE(fx.selector->fault(1));
  EXPECT_FALSE(fx.selector->fault(0));
  EXPECT_EQ(fx.selector->healthy_count(), 1);
}

TEST(NSelector, SequentialFailoverPreservesStream) {
  Fixture fx(3);
  std::vector<std::uint64_t> consumed;
  auto drain = [&] {
    while (auto token = fx.selector->try_read()) consumed.push_back(token->seq());
  };
  std::uint64_t w0 = 0, w1 = 0, w2 = 0;
  // All three in lockstep for 4 groups.
  for (; w0 < 4; ++w0, ++w1, ++w2) {
    ASSERT_TRUE(fx.selector->write_interface(0).try_write(make_token(w0)));
    ASSERT_TRUE(fx.selector->write_interface(1).try_write(make_token(w1)));
    ASSERT_TRUE(fx.selector->write_interface(2).try_write(make_token(w2)));
    drain();
  }
  // Replica 0 dies; 1 and 2 continue for 6 groups.
  for (; w1 < 10; ++w1, ++w2) {
    ASSERT_TRUE(fx.selector->write_interface(1).try_write(make_token(w1)));
    ASSERT_TRUE(fx.selector->write_interface(2).try_write(make_token(w2)));
    drain();
  }
  // Replica 1 dies; 2 carries on alone for 6 more.
  for (; w2 < 16; ++w2) {
    ASSERT_TRUE(fx.selector->write_interface(2).try_write(make_token(w2)));
    drain();
  }
  ASSERT_EQ(consumed.size(), 16u);
  for (std::uint64_t i = 0; i < consumed.size(); ++i) EXPECT_EQ(consumed[i], i);
  EXPECT_TRUE(fx.selector->fault(0));
  EXPECT_TRUE(fx.selector->fault(1));
  EXPECT_FALSE(fx.selector->fault(2));
}

TEST(NSelector, IsolationPerInterface) {
  Fixture fx(3);
  auto& w0 = fx.selector->write_interface(0);
  // Exhaust interface 0's space (capacity 6, initial 3 -> space 3).
  for (std::uint64_t k = 0; k < 3; ++k) ASSERT_TRUE(w0.try_write(make_token(k)));
  EXPECT_EQ(fx.selector->space(0), 0);
  EXPECT_FALSE(w0.try_write(make_token(3)));  // blocks
  // Peers unaffected (Lemma 1 generalized).
  EXPECT_EQ(fx.selector->space(1), 3);
  ASSERT_TRUE(fx.selector->write_interface(1).try_write(make_token(0)));
}

TEST(NSelector, FrozenWriterDropsSilently) {
  Fixture fx(3);
  fx.selector->freeze_writer(1);
  ASSERT_TRUE(fx.selector->write_interface(1).try_write(make_token(0)));
  EXPECT_EQ(fx.selector->fill(), 0);
  EXPECT_EQ(fx.selector->tokens_received(1), 0u);
}

TEST(NReplicator, ReintegrateReopensQueueAtCurrentPosition) {
  Fixture fx(3);
  // Queue 0 never drains: overflows and is convicted.
  for (std::uint64_t k = 0; k < 5; ++k) {
    ASSERT_TRUE(fx.replicator->try_write(make_token(k)));
    for (int r = 1; r < 3; ++r) (void)fx.replicator->read_interface(r).try_read();
  }
  ASSERT_TRUE(fx.replicator->fault(0));
  EXPECT_GT(fx.replicator->fill(0), 0);

  fx.replicator->reintegrate(0);
  EXPECT_FALSE(fx.replicator->fault(0));
  EXPECT_FALSE(fx.replicator->detection(0).has_value());
  // The stale backlog is discarded: the replica rejoins at the producer's
  // current position, not at tokens its peers already delivered.
  EXPECT_EQ(fx.replicator->fill(0), 0);

  ASSERT_TRUE(fx.replicator->try_write(make_token(5)));
  auto token = fx.replicator->read_interface(0).try_read();
  ASSERT_TRUE(token.has_value());
  EXPECT_EQ(token->seq(), 5u);
  EXPECT_EQ(fx.replicator->healthy_count(), 3);
}

TEST(NSelector, ReintegrateResyncRealignsDuplicateGroups) {
  Fixture fx(3);
  std::vector<std::uint64_t> consumed;
  auto drain = [&] {
    while (auto token = fx.selector->try_read()) consumed.push_back(token->seq());
  };
  // Lockstep for groups 0..3, then interface 0 goes silent and the peers
  // carry on until divergence (D = 4) convicts it.
  std::uint64_t seq = 0;
  for (; seq < 4; ++seq) {
    for (int r = 0; r < 3; ++r) {
      ASSERT_TRUE(fx.selector->write_interface(r).try_write(make_token(seq)));
    }
    drain();
  }
  for (; seq < 10; ++seq) {
    for (int r = 1; r < 3; ++r) {
      ASSERT_TRUE(fx.selector->write_interface(r).try_write(make_token(seq)));
    }
    drain();
  }
  ASSERT_TRUE(fx.selector->fault(0));

  fx.selector->reintegrate(0);
  EXPECT_FALSE(fx.selector->fault(0));
  EXPECT_EQ(fx.selector->space(0), 3);  // capacity - initial restored

  // A late duplicate of an already-delivered group is recognized as such by
  // the sequence-number resync and dropped, not delivered again.
  const auto delivered = consumed.size();
  ASSERT_TRUE(fx.selector->write_interface(0).try_write(make_token(seq - 1)));
  drain();
  EXPECT_EQ(consumed.size(), delivered);

  // From here interface 0 is a first-class member again: writing the next
  // group first makes IT the leader and the peers' copies the duplicates.
  for (; seq < 13; ++seq) {
    for (int r = 0; r < 3; ++r) {
      ASSERT_TRUE(fx.selector->write_interface(r).try_write(make_token(seq)));
    }
    drain();
  }
  ASSERT_EQ(consumed.size(), 13u);
  for (std::uint64_t i = 0; i < consumed.size(); ++i) EXPECT_EQ(consumed[i], i);
}

TEST(NSelector, RejoinAheadOfFrontierHeldUntilPeerCatchesUp) {
  Fixture fx(3);
  std::vector<std::uint64_t> consumed;
  auto drain = [&] {
    while (auto token = fx.selector->try_read()) consumed.push_back(token->seq());
  };
  std::uint64_t seq = 0;
  for (; seq < 4; ++seq) {
    for (int r = 0; r < 3; ++r) {
      ASSERT_TRUE(fx.selector->write_interface(r).try_write(make_token(seq)));
    }
    drain();
  }
  // Interface 0 halts (transient outage); peers advance to seq 5.
  fx.selector->freeze_writer(0);
  for (; seq < 6; ++seq) {
    for (int r = 1; r < 3; ++r) {
      ASSERT_TRUE(fx.selector->write_interface(r).try_write(make_token(seq)));
    }
    drain();
  }
  fx.selector->reintegrate(0);

  // The restarted replica resumes at seq 8 — ahead of the delivered frontier
  // (5). Tokens 6 and 7 exist only in the peers' pipelines, so the write is
  // HELD (returns false), not enqueued: delivering 8 now would turn the
  // peers' 6 and 7 into dropped late duplicates — a permanent gap.
  EXPECT_FALSE(fx.selector->write_interface(0).try_write(make_token(8)));
  for (; seq < 8; ++seq) {
    for (int r = 1; r < 3; ++r) {
      ASSERT_TRUE(fx.selector->write_interface(r).try_write(make_token(seq)));
    }
    drain();
  }
  // Frontier caught up: the retried write re-anchors and is fresh.
  ASSERT_TRUE(fx.selector->write_interface(0).try_write(make_token(8)));
  drain();
  ASSERT_EQ(consumed.size(), 9u);
  for (std::uint64_t i = 0; i < consumed.size(); ++i) EXPECT_EQ(consumed[i], i);
}

TEST(NSelector, ResyncSideImmuneToStallAndDivergenceUntilReanchored) {
  Fixture fx(3);
  std::uint64_t seq = 0;
  for (; seq < 4; ++seq) {
    for (int r = 0; r < 3; ++r) {
      ASSERT_TRUE(fx.selector->write_interface(r).try_write(make_token(seq)));
    }
    while (fx.selector->try_read()) {
    }
  }
  fx.selector->reintegrate(0);
  // While the rejoined side refills its pipeline, its counters refer to the
  // pre-fault epoch: 8 more groups push its stale received count D+ behind
  // the leader and its space past capacity, yet neither rule may convict it.
  for (; seq < 12; ++seq) {
    for (int r = 1; r < 3; ++r) {
      ASSERT_TRUE(fx.selector->write_interface(r).try_write(make_token(seq)));
    }
    while (fx.selector->try_read()) {
    }
  }
  EXPECT_GT(fx.selector->space(0), 6);  // would trip the stall rule
  EXPECT_FALSE(fx.selector->fault(0));
  // Its first write re-anchors and re-admits it.
  ASSERT_TRUE(fx.selector->write_interface(0).try_write(make_token(seq)));
  EXPECT_EQ(fx.selector->tokens_received(0), fx.selector->tokens_received(1) + 1);
}

class NReplicaParam : public ::testing::TestWithParam<int> {};

TEST_P(NReplicaParam, AllButOneFaultTolerated) {
  const int n = GetParam();
  Fixture fx(n);
  std::vector<std::uint64_t> consumed;
  auto drain = [&] {
    while (auto token = fx.selector->try_read()) consumed.push_back(token->seq());
  };
  // Replica r dies after group 3 * (r + 1); the highest-index replica
  // survives. Each alive replica writes every group.
  std::vector<std::uint64_t> written(static_cast<std::size_t>(n), 0);
  for (std::uint64_t group = 0; group < 4 * static_cast<std::uint64_t>(n); ++group) {
    for (int r = 0; r < n; ++r) {
      const bool alive =
          r == n - 1 || group < 3 * (static_cast<std::uint64_t>(r) + 1);
      if (!alive) continue;
      ASSERT_TRUE(
          fx.selector->write_interface(r).try_write(make_token(written[static_cast<std::size_t>(r)])));
      written[static_cast<std::size_t>(r)] += 1;
      drain();
    }
  }
  const std::uint64_t total = 4 * static_cast<std::uint64_t>(n);
  ASSERT_EQ(consumed.size(), total);
  for (std::uint64_t i = 0; i < total; ++i) EXPECT_EQ(consumed[i], i);
  EXPECT_FALSE(fx.selector->fault(n - 1));
}

INSTANTIATE_TEST_SUITE_P(TwoToFive, NReplicaParam, ::testing::Values(2, 3, 4, 5));

}  // namespace
}  // namespace sccft::ft
