// Example: the paper's headline scenario end-to-end — a fault-tolerant MJPEG
// decoder on the simulated SCC.
//
// Runs the duplicated MJPEG network (splitstream -> 2x decode -> mergeframe
// per replica, real JPEG-style decoding of synthesized video), kills replica
// 2 mid-stream, and reports what the framework detected, how fast, and that
// the decoded-frame stream kept flowing with identical content.
#include <iostream>

#include "apps/common/experiment.hpp"
#include "apps/mjpeg/app.hpp"

using namespace sccft;

int main() {
  apps::ExperimentRunner runner(apps::mjpeg::make_application());

  std::cout << "Duplicated MJPEG decoder topology:\n"
            << runner.render_topology(true) << "\n";

  apps::ExperimentOptions options;
  options.seed = 2014;
  options.run_periods = 300;       // 9 s of 30 fps video
  options.fault_after_periods = 150;
  options.inject_fault = true;
  options.faulty_replica = ft::ReplicaIndex::kReplica2;

  const auto faulted = runner.run(options);
  options.inject_fault = false;
  const auto clean = runner.run(options);

  std::cout << "Channel sizing (Eq. 3/4): |R1|=" << faulted.sizing.replicator_capacity1
            << " |R2|=" << faulted.sizing.replicator_capacity2
            << " |S1|=" << faulted.sizing.selector_capacity1
            << " |S2|=" << faulted.sizing.selector_capacity2 << "\n";
  std::cout << "Fault injected into replica 2 at "
            << rtc::to_ms(faulted.fault_injected_at) << " ms.\n";
  if (faulted.first_record) {
    std::cout << "First detection: " << ft::to_string(faulted.first_record->replica)
              << " via " << ft::to_string(faulted.first_record->rule) << ", latency "
              << rtc::to_ms(*faulted.first_latency) << " ms (bounds: replicator "
              << rtc::to_ms(faulted.sizing.replicator_overflow_bound) << " ms, selector "
              << rtc::to_ms(faulted.sizing.selector_latency_bound) << " ms)\n";
  }

  // Functional equivalence across the fault (Theorem 2 in action).
  const std::size_t n =
      std::min(faulted.output_checksums.size(), clean.output_checksums.size());
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (faulted.output_checksums[i] != clean.output_checksums[i]) ++mismatches;
  }
  std::cout << "Decoded frames delivered: " << faulted.output_checksums.size()
            << " (fault run) vs " << clean.output_checksums.size()
            << " (clean run); " << mismatches << " content mismatches in the common "
            << n << "-frame prefix.\n";
  std::cout << "Decoded inter-frame timing (fault run): mean "
            << util::format_double(faulted.consumer_interarrival_ms.mean(), 2)
            << " ms, max "
            << util::format_double(faulted.consumer_interarrival_ms.max(), 2) << " ms\n";

  const bool ok = faulted.first_record.has_value() && mismatches == 0 &&
                  faulted.correct_replica;
  std::cout << (ok ? "SUCCESS" : "FAILURE")
            << ": single timing fault tolerated transparently.\n";
  return ok ? 0 : 1;
}
