// sccft_cli — run fault-tolerance experiment campaigns from the command line.
//
//   ./sccft_cli --app adpcm --runs 20 --fault r2 --csv out.csv
//   ./sccft_cli --app mjpeg --fault r1 --mode rate --rate-factor 4
//   ./sccft_cli --app h264 --fault none --vcd clean.vcd
//
// Prints the sizing report and per-run results; optionally writes a CSV of
// the campaign and a VCD waveform of the last run.
#include <iostream>

#include "apps/adpcm/app.hpp"
#include "apps/common/experiment.hpp"
#include "apps/h264/app.hpp"
#include "apps/mjpeg/app.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

using namespace sccft;

int main(int argc, char** argv) {
  util::CliParser cli("sccft_cli",
                      "fault-tolerance experiment campaigns on the simulated SCC");
  cli.add_flag("app", "adpcm", "application: mjpeg | adpcm | h264");
  cli.add_int_flag("runs", 5, "number of runs (seeds 1..N)", /*min=*/1);
  cli.add_flag("fault", "r1", "faulty replica: r1 | r2 | none");
  cli.add_flag("mode", "silence", "fault mode: silence | rate");
  cli.add_double_flag("rate-factor", 4.0, "slowdown factor for --mode rate",
                      /*min=*/1.0);
  cli.add_int_flag("periods", 200, "simulated length in producer periods",
                   /*min=*/1);
  cli.add_int_flag("fault-after", 120, "fault injection time in periods",
                   /*min=*/0);
  cli.add_flag("minimize-jitter", "false", "use the Table-3 minimized-jitter variant");
  cli.add_int_flag("divergence", 0, "override Eq. (5)'s D (0 = analyzed value)",
                   /*min=*/0);
  cli.add_int_flag("capacity", 0, "override Eq. (3)'s |R_i| (0 = analyzed values)",
                   /*min=*/0);
  cli.add_flag("baselines", "false", "attach distance-function + watchdog monitors");
  cli.add_flag("csv", "", "write per-run results to this CSV file");
  cli.add_flag("vcd", "", "write the last run's channel waveform to this VCD file");
  cli.add_flag("no-noc", "false", "disable the SCC NoC latency model");

  if (!cli.parse(argc, argv)) {
    std::cerr << "error: " << cli.error() << "\n\n" << cli.usage();
    return 2;
  }
  if (cli.help_requested()) {
    std::cout << cli.usage();
    return 0;
  }

  apps::ApplicationSpec spec;
  const std::string app_name = cli.get("app");
  if (app_name == "mjpeg") {
    spec = apps::mjpeg::make_application();
  } else if (app_name == "adpcm") {
    spec = apps::adpcm::make_application();
  } else if (app_name == "h264") {
    spec = apps::h264::make_application();
  } else {
    std::cerr << "error: unknown --app " << app_name << "\n";
    return 2;
  }
  if (cli.get_bool("minimize-jitter")) spec = apps::minimize_replica_jitter(spec);

  apps::ExperimentRunner runner(std::move(spec));
  apps::ExperimentOptions options;
  options.run_periods = static_cast<std::uint64_t>(cli.get_int("periods"));
  options.fault_after_periods = static_cast<std::uint64_t>(cli.get_int("fault-after"));
  options.use_platform = !cli.get_bool("no-noc");
  options.divergence_override = cli.get_int("divergence");
  options.replicator_capacity_override = cli.get_int("capacity");
  options.attach_baseline_monitors = cli.get_bool("baselines");

  const std::string fault = cli.get("fault");
  options.inject_fault = fault != "none";
  if (fault == "r1") {
    options.faulty_replica = ft::ReplicaIndex::kReplica1;
  } else if (fault == "r2") {
    options.faulty_replica = ft::ReplicaIndex::kReplica2;
  } else if (fault != "none") {
    std::cerr << "error: unknown --fault " << fault << "\n";
    return 2;
  }
  options.fault_mode =
      cli.get("mode") == "rate" ? ft::FaultMode::kRateDegradation : ft::FaultMode::kSilence;
  options.rate_factor = cli.get_double("rate-factor");

  const int runs = static_cast<int>(cli.get_int("runs"));
  util::CsvWriter csv({"seed", "detected", "rule", "replica", "latency_ms",
                       "replicator_latency_ms", "selector_latency_ms", "tokens",
                       "false_positive"});

  std::cout << "Campaign: app=" << app_name << " runs=" << runs << " fault=" << fault
            << " mode=" << cli.get("mode") << "\n";
  bool sizing_printed = false;
  int detected = 0, false_positives = 0;
  for (int run = 1; run <= runs; ++run) {
    options.seed = static_cast<std::uint64_t>(run);
    options.vcd_path = (run == runs) ? cli.get("vcd") : "";
    const auto result = runner.run(options);
    if (!sizing_printed) {
      sizing_printed = true;
      const auto& s = result.sizing;
      std::cout << "Sizing: |R1|=" << s.replicator_capacity1
                << " |R2|=" << s.replicator_capacity2 << " |S1|=" << s.selector_capacity1
                << " |S2|=" << s.selector_capacity2 << " D=" << s.selector_threshold
                << " bounds: replicator " << rtc::to_ms(s.replicator_overflow_bound)
                << " ms / selector " << rtc::to_ms(s.selector_latency_bound) << " ms\n";
    }
    auto fmt = [](const std::optional<rtc::TimeNs>& v) {
      return v ? util::format_double(rtc::to_ms(*v), 3) : std::string("-");
    };
    std::cout << "  seed " << run << ": ";
    if (result.first_record) {
      std::cout << "detected " << ft::to_string(result.first_record->replica) << " via "
                << ft::to_string(result.first_record->rule) << " after "
                << fmt(result.first_latency) << " ms";
      ++detected;
    } else {
      std::cout << (options.inject_fault ? "NOT DETECTED" : "no detection (clean)");
    }
    if (result.false_positive) {
      std::cout << " [FALSE POSITIVE]";
      ++false_positives;
    }
    std::cout << " (" << result.output_checksums.size() << " tokens delivered)\n";
    csv.add_row({std::to_string(run), result.first_record ? "1" : "0",
                 result.first_record ? ft::to_string(result.first_record->rule) : "-",
                 result.first_record ? ft::to_string(result.first_record->replica) : "-",
                 fmt(result.first_latency), fmt(result.replicator_latency),
                 fmt(result.selector_latency),
                 std::to_string(result.output_checksums.size()),
                 result.false_positive ? "1" : "0"});
  }
  std::cout << "Summary: " << detected << "/" << runs << " detected, "
            << false_positives << " false positives.\n";
  if (!cli.get("csv").empty()) {
    if (csv.write_file(cli.get("csv"))) {
      std::cout << "CSV written to " << cli.get("csv") << "\n";
    } else {
      std::cerr << "error: could not write " << cli.get("csv") << "\n";
      return 1;
    }
  }
  return 0;
}
