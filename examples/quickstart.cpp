// Quickstart: make a tiny stream-processing application fault-tolerant in
// ~80 lines.
//
//   1. describe the interface timing (<period, jitter, delay> per interface),
//   2. build a FaultTolerantHarness — it sizes the replicator/selector
//      channels from the Real-Time Calculus analysis (paper Eq. 3-5) and
//      computes worst-case detection latency bounds (Eq. 6-8),
//   3. attach a producer, two replicas, and a consumer as coroutines,
//   4. inject a silence fault into replica 1 and watch it get detected —
//      with zero runtime timekeeping — while the consumer's output stream
//      continues unharmed.
#include <iostream>

#include "ft/framework.hpp"
#include "kpn/network.hpp"
#include "kpn/timing.hpp"

using namespace sccft;

int main() {
  sim::Simulator simulator;
  kpn::Network net(simulator);

  // 1. Timing models: producer at 10 ms period with 1 ms jitter; replica 1
  //    tight (2 ms jitter), replica 2 sloppier (10 ms jitter) — the "design
  //    diversity" between replicas.
  ft::AppTimingSpec timing;
  timing.producer = rtc::PJD::from_ms(10, 1, 10);
  timing.replica1_in = timing.replica1_out = rtc::PJD::from_ms(10, 2, 10);
  timing.replica2_in = timing.replica2_out = rtc::PJD::from_ms(10, 10, 10);
  timing.consumer = rtc::PJD::from_ms(10, 1, 10);

  // 2. The harness runs the design-time analysis and builds the channels.
  ft::FaultTolerantHarness harness(net, {.timing = timing, .name_prefix = "demo"});
  const auto& sizing = harness.sizing();
  std::cout << "Sizing: |R1|=" << sizing.replicator_capacity1
            << " |R2|=" << sizing.replicator_capacity2
            << " |S1|=" << sizing.selector_capacity1
            << " |S2|=" << sizing.selector_capacity2 << " D=" << sizing.selector_threshold
            << "\nWorst-case detection: replicator "
            << rtc::to_ms(sizing.replicator_overflow_bound) << " ms, selector "
            << rtc::to_ms(sizing.selector_latency_bound) << " ms\n\n";

  // 3. Processes. The "application" doubles every byte of an 8-byte counter
  //    token; each replica is one coroutine process.
  net.add_process("producer", scc::CoreId{0}, 1,
                  [&](kpn::ProcessContext& ctx) -> sim::Task {
                    kpn::TimingShaper shaper(timing.producer, 0, ctx.rng());
                    for (std::uint64_t k = 0;; ++k) {
                      const rtc::TimeNs t = shaper.next_emission(ctx.now());
                      if (t > ctx.now()) co_await ctx.delay(t - ctx.now());
                      std::vector<std::uint8_t> payload(8, static_cast<std::uint8_t>(k));
                      co_await kpn::write(harness.replicator(),
                                          kpn::Token(std::move(payload), k, ctx.now()));
                      shaper.commit(ctx.now());
                    }
                  });

  auto replica_body = [&](ft::ReplicaIndex which, const rtc::PJD& model) {
    return [&, which, model](kpn::ProcessContext& ctx) -> sim::Task {
      kpn::TimingShaper emit(model, 0, ctx.rng());
      auto& input = harness.replicator().read_interface(which);
      auto& output = harness.selector().write_interface(which);
      while (true) {
        SCCFT_FAULT_GATE(ctx);
        kpn::Token token = co_await kpn::read(input);
        SCCFT_FAULT_GATE(ctx);
        std::vector<std::uint8_t> doubled(token.payload().begin(), token.payload().end());
        for (auto& b : doubled) b = static_cast<std::uint8_t>(b * 2);
        const rtc::TimeNs t = emit.next_emission(ctx.now());
        if (t > ctx.now()) co_await ctx.compute(t - ctx.now());
        co_await kpn::write(output, kpn::Token(std::move(doubled), token.seq(), ctx.now()));
        emit.commit(ctx.now());
      }
    };
  };
  auto& r1 = net.add_process("replica1", scc::CoreId{2}, 2,
                             replica_body(ft::ReplicaIndex::kReplica1, timing.replica1_out));
  net.add_process("replica2", scc::CoreId{4}, 3,
                  replica_body(ft::ReplicaIndex::kReplica2, timing.replica2_out));

  std::uint64_t received = 0;
  net.add_process("consumer", scc::CoreId{6}, 4,
                  [&](kpn::ProcessContext& ctx) -> sim::Task {
                    kpn::TimingShaper shaper(timing.consumer, 0, ctx.rng());
                    while (true) {
                      const rtc::TimeNs t = shaper.next_emission(ctx.now());
                      if (t > ctx.now()) co_await ctx.delay(t - ctx.now());
                      kpn::Token token = co_await kpn::read(harness.selector());
                      shaper.commit(ctx.now());
                      ++received;
                      (void)token;
                    }
                  });

  // 4. Kill replica 1 at t = 500 ms; run for 2 simulated seconds.
  harness.injector().schedule({&r1}, rtc::from_ms(500.0), ft::FaultMode::kSilence);
  simulator.schedule_at(rtc::from_ms(500.0), [&] {
    harness.replicator().freeze_reader(ft::ReplicaIndex::kReplica1);
    harness.selector().freeze_writer(ft::ReplicaIndex::kReplica1);
  });
  net.run_until(rtc::from_sec(2.0));

  std::cout << "Fault injected into replica 1 at 500 ms.\n";
  for (const auto& record : harness.detections().records) {
    std::cout << "Detected: " << ft::to_string(record.replica) << " via "
              << ft::to_string(record.rule) << " at " << rtc::to_ms(record.detected_at)
              << " ms (latency "
              << rtc::to_ms(record.detected_at - rtc::from_ms(500.0)) << " ms)\n";
  }
  std::cout << "Consumer received " << received
            << " tokens across the fault — the stream never stopped.\n";
  return harness.detections().records.empty() ? 1 : 0;
}
