// Example: bringing your own application to the framework.
//
// Defines a brand-new streaming application (a rolling-XOR "cipher" stage)
// via ApplicationSpec — no changes to the library — and runs the full
// experiment protocol against it: sizing, fault-free validation, and a
// fault-injection campaign for both replicas, on the simulated SCC with
// low-contention mapping.
#include <iostream>

#include "apps/common/experiment.hpp"

using namespace sccft;

namespace {

apps::ApplicationSpec make_cipher_app() {
  apps::ApplicationSpec app;
  app.name = "cipher";
  app.topology = apps::ReplicaTopology::kSingleStage;
  app.input_token_bytes = 4 * 1024;
  app.output_token_bytes = 4 * 1024;
  app.stage_compute_time = rtc::from_ms(0.5);
  // 8 ms period, modest producer jitter, diverse replicas.
  app.timing.producer = rtc::PJD::from_ms(8, 0.5, 8);
  app.timing.replica1_in = app.timing.replica1_out = rtc::PJD::from_ms(8, 2, 8);
  app.timing.replica2_in = app.timing.replica2_out = rtc::PJD::from_ms(8, 12, 8);
  app.timing.consumer = rtc::PJD::from_ms(8, 0.5, 8);

  app.make_input = [](std::uint64_t index) {
    apps::Bytes data(4 * 1024);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<std::uint8_t>((index * 131 + i * 7) & 0xFF);
    }
    return data;
  };
  app.transform = [](apps::BytesView input) {
    apps::Bytes out(input.begin(), input.end());
    std::uint8_t rolling = 0x5A;
    for (auto& byte : out) {
      byte ^= rolling;
      rolling = static_cast<std::uint8_t>(rolling * 31 + byte);
    }
    return out;
  };
  return app;
}

}  // namespace

int main() {
  apps::ExperimentRunner runner(make_cipher_app());

  std::cout << "Custom application topology (duplicated):\n"
            << runner.render_topology(true) << "\n";

  apps::ExperimentOptions options;
  options.run_periods = 300;
  options.fault_after_periods = 150;

  // Fault-free validation first: fills within capacity, no false positives.
  options.inject_fault = false;
  const auto clean = runner.run(options);
  std::cout << "Sizing: |R1|=" << clean.sizing.replicator_capacity1
            << " |R2|=" << clean.sizing.replicator_capacity2
            << " D=" << clean.sizing.selector_threshold << "\n";
  std::cout << "Fault-free: fills R1=" << clean.fill_r1 << "/"
            << clean.sizing.replicator_capacity1 << ", R2=" << clean.fill_r2 << "/"
            << clean.sizing.replicator_capacity2
            << ", false positives: " << (clean.any_detection ? "YES" : "none") << "\n";

  bool all_ok = !clean.any_detection;
  for (const auto faulty : {ft::ReplicaIndex::kReplica1, ft::ReplicaIndex::kReplica2}) {
    options.inject_fault = true;
    options.faulty_replica = faulty;
    options.seed = 5 + static_cast<std::uint64_t>(ft::index_of(faulty));
    const auto result = runner.run(options);
    std::cout << "Fault in " << ft::to_string(faulty) << ": ";
    if (result.first_record) {
      std::cout << "detected via " << ft::to_string(result.first_record->rule)
                << " after " << rtc::to_ms(*result.first_latency) << " ms (bound "
                << rtc::to_ms(std::max(result.sizing.replicator_overflow_bound,
                                       result.sizing.selector_latency_bound))
                << " ms), correct replica: " << (result.correct_replica ? "yes" : "NO")
                << "\n";
      all_ok = all_ok && result.correct_replica;
    } else {
      std::cout << "NOT DETECTED\n";
      all_ok = false;
    }
  }
  std::cout << (all_ok ? "SUCCESS" : "FAILURE") << "\n";
  return all_ok ? 0 : 1;
}
