// Example: replica recovery and reintegration (extension beyond the paper).
//
// Timeline: replica 1 is killed at 400 ms and detected by the framework; at
// 1000 ms it is repaired (processes restarted, channels reintegrated, pair
// identity re-synchronized from token sequence numbers); at 1600 ms replica
// 2 is killed — and the *repaired* replica 1 carries the stream, proving the
// system regained its fault-tolerance margin.
#include <iostream>
#include <vector>

#include "ft/framework.hpp"
#include "ft/recovery.hpp"
#include "kpn/network.hpp"
#include "kpn/timing.hpp"

using namespace sccft;

int main() {
  sim::Simulator simulator;
  kpn::Network net(simulator);

  ft::AppTimingSpec timing;
  timing.producer = rtc::PJD::from_ms(10, 1, 10);
  timing.replica1_in = timing.replica1_out = rtc::PJD::from_ms(10, 2, 10);
  timing.replica2_in = timing.replica2_out = rtc::PJD::from_ms(10, 6, 10);
  timing.consumer = rtc::PJD::from_ms(10, 1, 10);
  ft::FaultTolerantHarness harness(net, {.timing = timing, .name_prefix = "rec"});

  net.add_process("producer", scc::CoreId{0}, 1,
                  [&](kpn::ProcessContext& ctx) -> sim::Task {
                    kpn::TimingShaper shaper(timing.producer, 0, ctx.rng());
                    for (std::uint64_t k = 0;; ++k) {
                      const rtc::TimeNs t = shaper.next_emission(ctx.now());
                      if (t > ctx.now()) co_await ctx.delay(t - ctx.now());
                      std::vector<std::uint8_t> payload(8, static_cast<std::uint8_t>(k));
                      co_await kpn::write(harness.replicator(),
                                          kpn::Token(std::move(payload), k, ctx.now()));
                      shaper.commit(ctx.now());
                    }
                  });

  auto replica_body = [&](ft::ReplicaIndex which, rtc::PJD model) {
    return [&, which, model](kpn::ProcessContext& ctx) -> sim::Task {
      // Anchor the shaper at (re)start time: a rejoining replica paces
      // itself from the moment it comes back.
      kpn::TimingShaper emit(model, ctx.now(), ctx.rng());
      while (true) {
        SCCFT_FAULT_GATE(ctx);
        kpn::Token token =
            co_await kpn::read(harness.replicator().read_interface(which));
        SCCFT_FAULT_GATE(ctx);
        const rtc::TimeNs t = emit.next_emission(ctx.now());
        if (t > ctx.now()) co_await ctx.compute(t - ctx.now());
        SCCFT_FAULT_GATE(ctx);
        co_await kpn::write(harness.selector().write_interface(which), token);
        emit.commit(ctx.now());
      }
    };
  };
  std::vector<kpn::Process*> replicas{
      &net.add_process("replica1", scc::CoreId{2}, 2,
                       replica_body(ft::ReplicaIndex::kReplica1, timing.replica1_out)),
      &net.add_process("replica2", scc::CoreId{4}, 3,
                       replica_body(ft::ReplicaIndex::kReplica2, timing.replica2_out))};

  std::uint64_t received = 0;
  bool intact = true;
  std::uint64_t expected = 0;
  net.add_process("consumer", scc::CoreId{6}, 4,
                  [&](kpn::ProcessContext& ctx) -> sim::Task {
                    kpn::TimingShaper shaper(timing.consumer, 0, ctx.rng());
                    while (true) {
                      const rtc::TimeNs t = shaper.next_emission(ctx.now());
                      if (t > ctx.now()) co_await ctx.delay(t - ctx.now());
                      kpn::Token token = co_await kpn::read(harness.selector());
                      shaper.commit(ctx.now());
                      if (token.seq() != expected) intact = false;
                      expected = token.seq() + 1;
                      ++received;
                    }
                  });

  auto kill = [&](ft::ReplicaIndex r, rtc::TimeNs at) {
    simulator.schedule_at(at, [&, r, at] {
      replicas[static_cast<std::size_t>(index_of(r))]->context().fault().silenced = true;
      harness.replicator().freeze_reader(r);
      harness.selector().freeze_writer(r);
      std::cout << rtc::to_ms(at) << " ms: " << ft::to_string(r) << " killed\n";
    });
  };
  auto repair = [&](ft::ReplicaIndex r, rtc::TimeNs at) {
    simulator.schedule_at(at, [&, r, at] {
      ft::ReplicaAssets assets{
          r, {replicas[static_cast<std::size_t>(index_of(r))]}, {}};
      ft::recover_replica(harness.replicator(), harness.selector(), assets);
      std::cout << rtc::to_ms(at) << " ms: " << ft::to_string(r)
                << " repaired and reintegrated\n";
    });
  };

  kill(ft::ReplicaIndex::kReplica1, rtc::from_ms(400.0));
  repair(ft::ReplicaIndex::kReplica1, rtc::from_ms(1000.0));
  kill(ft::ReplicaIndex::kReplica2, rtc::from_ms(1600.0));

  net.run_until(rtc::from_sec(2.5));

  for (const auto& d : harness.detections().records) {
    std::cout << "detected " << ft::to_string(d.replica) << " via "
              << ft::to_string(d.rule) << " at " << rtc::to_ms(d.detected_at)
              << " ms\n";
  }
  std::cout << "Consumer received " << received << " tokens, stream "
            << (intact ? "intact" : "CORRUPTED") << ".\n";

  const bool r2_detected = harness.selector().fault(ft::ReplicaIndex::kReplica2) ||
                           harness.replicator().fault(ft::ReplicaIndex::kReplica2);
  const bool ok = intact && received > 230 && r2_detected &&
                  !harness.selector().fault(ft::ReplicaIndex::kReplica1);
  std::cout << (ok ? "SUCCESS" : "FAILURE")
            << ": fault -> repair -> second fault, all tolerated.\n";
  return ok ? 0 : 1;
}
