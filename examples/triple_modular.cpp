// Example: the paper's n-fault generalization in action — three replicas
// tolerating TWO sequential permanent timing faults.
//
// Builds a 3-replica pipeline with the N-replica channels (ft/nreplica.hpp),
// kills replica 0 at t = 400 ms and replica 1 at t = 900 ms, and shows the
// consumer's stream surviving both failovers without a gap.
#include <iostream>
#include <vector>

#include "ft/nreplica.hpp"
#include "kpn/network.hpp"
#include "kpn/timing.hpp"

using namespace sccft;

int main() {
  sim::Simulator simulator;
  kpn::Network net(simulator);

  const auto producer_model = rtc::PJD::from_ms(10, 1, 10);
  const auto consumer_model = rtc::PJD::from_ms(10, 1, 10);
  const std::vector<rtc::PJD> replica_models{rtc::PJD::from_ms(10, 2, 10),
                                             rtc::PJD::from_ms(10, 5, 10),
                                             rtc::PJD::from_ms(10, 10, 10)};

  // Design-time analysis for N = 3.
  ft::NReplicaTimingModel model;
  model.producer_upper = rtc::make_curve<rtc::PJDUpperCurve>(producer_model);
  model.producer_lower = rtc::make_curve<rtc::PJDLowerCurve>(producer_model);
  model.consumer_upper = rtc::make_curve<rtc::PJDUpperCurve>(consumer_model);
  model.consumer_lower = rtc::make_curve<rtc::PJDLowerCurve>(consumer_model);
  for (const auto& pjd : replica_models) {
    model.in_upper.push_back(rtc::make_curve<rtc::PJDUpperCurve>(pjd));
    model.in_lower.push_back(rtc::make_curve<rtc::PJDLowerCurve>(pjd));
    model.out_upper.push_back(rtc::make_curve<rtc::PJDUpperCurve>(pjd));
    model.out_lower.push_back(rtc::make_curve<rtc::PJDLowerCurve>(pjd));
  }
  const auto sizing = ft::analyze_n_replica_network(model, rtc::from_sec(3.0));
  std::cout << "3-replica sizing: |R| = {";
  for (auto c : sizing.replicator_capacity) std::cout << " " << c;
  std::cout << " }, |S| = {";
  for (auto c : sizing.selector_capacity) std::cout << " " << c;
  std::cout << " }, D = " << sizing.divergence_threshold << "\n";

  auto& replicator = net.adopt_channel(std::make_unique<ft::NReplicatorChannel>(
      simulator, "tmr.replicator", sizing.replicator_capacity));
  auto& selector = net.adopt_channel(std::make_unique<ft::NSelectorChannel>(
      simulator, "tmr.selector",
      ft::NSelectorChannel::Config{sizing.selector_capacity, sizing.selector_initial,
                                   sizing.divergence_threshold, true}));

  std::vector<ft::NDetectionRecord> detections;
  auto observer = [&](const ft::NDetectionRecord& r) { detections.push_back(r); };
  replicator.set_fault_observer(observer);
  selector.set_fault_observer(observer);

  net.add_process("producer", scc::CoreId{0}, 1,
                  [&](kpn::ProcessContext& ctx) -> sim::Task {
                    kpn::TimingShaper shaper(producer_model, 0, ctx.rng());
                    for (std::uint64_t k = 0;; ++k) {
                      const rtc::TimeNs t = shaper.next_emission(ctx.now());
                      if (t > ctx.now()) co_await ctx.delay(t - ctx.now());
                      std::vector<std::uint8_t> payload(16, static_cast<std::uint8_t>(k));
                      co_await kpn::write(replicator,
                                          kpn::Token(std::move(payload), k, ctx.now()));
                      shaper.commit(ctx.now());
                    }
                  });

  std::vector<kpn::Process*> replicas;
  for (int r = 0; r < 3; ++r) {
    replicas.push_back(&net.add_process(
        "replica" + std::to_string(r), scc::CoreId{2 * (r + 1)},
        10 + static_cast<std::uint64_t>(r),
        [&, r, pjd = replica_models[static_cast<std::size_t>(r)]](
            kpn::ProcessContext& ctx) -> sim::Task {
          kpn::TimingShaper emit(pjd, 0, ctx.rng());
          while (true) {
            SCCFT_FAULT_GATE(ctx);
            kpn::Token token = co_await kpn::read(replicator.read_interface(r));
            SCCFT_FAULT_GATE(ctx);
            co_await ctx.compute(rtc::from_us(300));
            const rtc::TimeNs t = emit.next_emission(ctx.now());
            if (t > ctx.now()) co_await ctx.compute(t - ctx.now());
            SCCFT_FAULT_GATE(ctx);
            co_await kpn::write(selector.write_interface(r),
                                token.restamped(token.seq(), ctx.now()));
            emit.commit(ctx.now());
          }
        }));
  }

  std::uint64_t received = 0;
  std::uint64_t next_expected = 0;
  bool gap = false;
  net.add_process("consumer", scc::CoreId{8}, 99,
                  [&](kpn::ProcessContext& ctx) -> sim::Task {
                    kpn::TimingShaper shaper(consumer_model, 0, ctx.rng());
                    while (true) {
                      const rtc::TimeNs t = shaper.next_emission(ctx.now());
                      if (t > ctx.now()) co_await ctx.delay(t - ctx.now());
                      kpn::Token token = co_await kpn::read(selector);
                      shaper.commit(ctx.now());
                      if (token.seq() != next_expected) gap = true;
                      next_expected = token.seq() + 1;
                      ++received;
                    }
                  });

  // Kill replica 0 at 400 ms, replica 1 at 900 ms.
  auto kill = [&](int r, rtc::TimeNs at) {
    simulator.schedule_at(at, [&, r] {
      replicas[static_cast<std::size_t>(r)]->context().fault().silenced = true;
      replicator.freeze_reader(r);
      selector.freeze_writer(r);
    });
  };
  kill(0, rtc::from_ms(400.0));
  kill(1, rtc::from_ms(900.0));

  net.run_until(rtc::from_sec(2.0));

  std::cout << "Faults injected at 400 ms (replica 0) and 900 ms (replica 1).\n";
  for (const auto& d : detections) {
    std::cout << "Detected replica " << d.replica << " via " << to_string(d.rule)
              << " at " << rtc::to_ms(d.detected_at) << " ms\n";
  }
  std::cout << "Consumer received " << received << " tokens, in order, "
            << (gap ? "WITH GAPS" : "no gaps") << "; surviving replicas: "
            << selector.healthy_count() << "\n";

  const bool ok = !gap && received > 180 && selector.healthy_count() == 1 &&
                  detections.size() >= 2;
  std::cout << (ok ? "SUCCESS" : "FAILURE")
            << ": two sequential timing faults tolerated with three replicas.\n";
  return ok ? 0 : 1;
}
