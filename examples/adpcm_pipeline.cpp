// Example: the ADPCM encoder+decoder pipeline with a *rate-degradation*
// fault — the subtler timing-fault mode where the faulty replica keeps
// producing tokens, just too slowly. Shows that detection works without the
// replica ever falling fully silent, and compares against the baseline
// monitors.
#include <iostream>

#include "apps/adpcm/app.hpp"
#include "apps/common/experiment.hpp"

using namespace sccft;

int main() {
  apps::ExperimentRunner runner(apps::adpcm::make_application());

  std::cout << "Duplicated ADPCM application topology:\n"
            << runner.render_topology(true) << "\n";

  apps::ExperimentOptions options;
  options.seed = 99;
  options.run_periods = 400;
  options.fault_after_periods = 200;
  options.inject_fault = true;
  options.fault_mode = ft::FaultMode::kRateDegradation;
  options.rate_factor = 5.0;  // the replica's compute slows down 5x
  options.faulty_replica = ft::ReplicaIndex::kReplica1;

  const auto result = runner.run(options);

  std::cout << "Rate-degradation fault (5x slowdown) injected into replica 1 at "
            << rtc::to_ms(result.fault_injected_at) << " ms.\n";
  if (result.first_record) {
    std::cout << "Detected: " << ft::to_string(result.first_record->replica) << " via "
              << ft::to_string(result.first_record->rule) << ", latency "
              << rtc::to_ms(*result.first_latency) << " ms.\n";
  } else {
    std::cout << "NOT DETECTED.\n";
  }
  std::cout << "Audio blocks delivered to the consumer: "
            << result.output_checksums.size() << "; consumer stalls: "
            << result.consumer_stalls << ".\n";
  std::cout << "Inter-arrival: mean "
            << util::format_double(result.consumer_interarrival_ms.mean(), 2)
            << " ms (nominal 6.30 ms).\n";

  const bool ok = result.first_record.has_value() && result.correct_replica &&
                  !result.false_positive;
  std::cout << (ok ? "SUCCESS" : "FAILURE") << "\n";
  return ok ? 0 : 1;
}
