// Example: the complete interface-based design flow (the paper's reference
// [1] workflow) — starting from only the producer's timing model and the
// replicas' SERVICE curves, derive everything the fault-tolerance framework
// needs, then run the dimensioned system and verify it holds.
//
//   producer PJD --+--> GPC(replica-1 service) --> derived output curves
//                  +--> GPC(replica-2 service) --> derived output curves
//   derived curves --> Eq. (3)-(5) sizing --> harness --> simulated run
#include <iostream>

#include "ft/framework.hpp"
#include "kpn/network.hpp"
#include "kpn/timing.hpp"
#include "rtc/calibration.hpp"
#include "rtc/gpc.hpp"

using namespace sccft;

int main() {
  // 1. What the designer knows: the input stream and each replica's service.
  const rtc::PJD producer_model = rtc::PJD::from_ms(10, 1, 10);
  // Replica 1: fast stage (one token per 4 ms after 2 ms latency);
  // replica 2: slower, burstier stage (one per 7 ms after 5 ms latency).
  const rtc::RateLatencyCurve service1(rtc::from_ms(4.0), rtc::from_ms(2.0));
  const rtc::RateLatencyCurve service2(rtc::from_ms(7.0), rtc::from_ms(5.0));

  const rtc::PJDUpperCurve in_upper(producer_model);
  const rtc::PJDLowerCurve in_lower(producer_model);
  const rtc::TimeNs horizon = rtc::from_sec(3.0);

  // 2. Propagate through each replica (GPC analysis).
  const auto out1 = rtc::gpc_analyze(in_upper, in_lower, service1, horizon);
  const auto out2 = rtc::gpc_analyze(in_upper, in_lower, service2, horizon);
  std::cout << "Replica 1: delay bound " << rtc::to_ms(out1.delay_bound)
            << " ms, backlog bound " << out1.backlog_bound << " tokens\n";
  std::cout << "Replica 2: delay bound " << rtc::to_ms(out2.delay_bound)
            << " ms, backlog bound " << out2.backlog_bound << " tokens\n";

  // 3. Express the derived output bounds as conservative PJD models (period
  //    = producer period, jitter >= the stage's delay bound — the standard
  //    jitter-propagation rule J' = J + delay).
  auto derived_model = [&](const rtc::GpcResult& result) {
    rtc::PJD model = producer_model;
    model.jitter = producer_model.jitter + result.delay_bound;
    return model;
  };
  ft::AppTimingSpec timing;
  timing.producer = producer_model;
  timing.replica1_in = derived_model(out1);   // consumption tracks service
  timing.replica1_out = derived_model(out1);
  timing.replica2_in = derived_model(out2);
  timing.replica2_out = derived_model(out2);
  timing.consumer = producer_model;

  // 4. Size and build the fault-tolerant system from the derived models.
  sim::Simulator simulator;
  kpn::Network net(simulator);
  ft::FaultTolerantHarness harness(net, {.timing = timing, .name_prefix = "gpc"});
  const auto& sizing = harness.sizing();
  std::cout << "Derived sizing: |R1|=" << sizing.replicator_capacity1
            << " |R2|=" << sizing.replicator_capacity2
            << " |S1|=" << sizing.selector_capacity1
            << " |S2|=" << sizing.selector_capacity2
            << " D=" << sizing.selector_threshold << "\n";

  // 5. Run the actual system: replicas whose *real* behaviour is governed by
  //    the service curves (ready after service latency + one quantum),
  //    producer at the specified model. Verify: no false positives and no
  //    overflow — the derived design is sound for the real behaviour.
  net.add_process("producer", scc::CoreId{0}, 1,
                  [&](kpn::ProcessContext& ctx) -> sim::Task {
                    kpn::TimingShaper shaper(producer_model, 0, ctx.rng());
                    for (std::uint64_t k = 0;; ++k) {
                      const rtc::TimeNs t = shaper.next_emission(ctx.now());
                      if (t > ctx.now()) co_await ctx.delay(t - ctx.now());
                      std::vector<std::uint8_t> payload(32, static_cast<std::uint8_t>(k));
                      co_await kpn::write(harness.replicator(),
                                          kpn::Token(std::move(payload), k, ctx.now()));
                      shaper.commit(ctx.now());
                    }
                  });
  auto replica_body = [&](ft::ReplicaIndex which, rtc::TimeNs quantum,
                          rtc::TimeNs latency) {
    return [&, which, quantum, latency](kpn::ProcessContext& ctx) -> sim::Task {
      bool first = true;
      while (true) {
        kpn::Token token =
            co_await kpn::read(harness.replicator().read_interface(which));
        // Rate-latency service: initial latency once, then one quantum/token.
        co_await ctx.compute(first ? latency + quantum : quantum);
        first = false;
        co_await kpn::write(harness.selector().write_interface(which), token);
      }
    };
  };
  net.add_process("replica1", scc::CoreId{2}, 2,
                  replica_body(ft::ReplicaIndex::kReplica1, rtc::from_ms(4.0),
                               rtc::from_ms(2.0)));
  net.add_process("replica2", scc::CoreId{4}, 3,
                  replica_body(ft::ReplicaIndex::kReplica2, rtc::from_ms(7.0),
                               rtc::from_ms(5.0)));
  std::uint64_t received = 0;
  net.add_process("consumer", scc::CoreId{6}, 4,
                  [&](kpn::ProcessContext& ctx) -> sim::Task {
                    kpn::TimingShaper shaper(producer_model, 0, ctx.rng());
                    while (true) {
                      const rtc::TimeNs t = shaper.next_emission(ctx.now());
                      if (t > ctx.now()) co_await ctx.delay(t - ctx.now());
                      (void)co_await kpn::read(harness.selector());
                      shaper.commit(ctx.now());
                      ++received;
                    }
                  });

  net.run_until(rtc::from_sec(3.0));

  const bool clean = harness.detections().records.empty();
  std::cout << "Run: " << received << " tokens delivered, "
            << (clean ? "no false positives" : "FALSE POSITIVE") << ".\n";
  std::cout << (clean && received > 280 ? "SUCCESS" : "FAILURE")
            << ": design derived entirely from service curves is sound.\n";
  return clean && received > 280 ? 0 : 1;
}
