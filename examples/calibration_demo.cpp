// Example: calibrating timing models from measured traces.
//
// The paper notes that interface-level timing models "are either available,
// or can be generated quickly from calibrations" (Section 1). This demo runs
// the H.264 application once with write-tracing enabled on a plain FIFO,
// fits a conservative PJD model to the observed token arrivals, and shows
// that the fitted model reproduces the design-time sizing.
#include <iostream>

#include "kpn/network.hpp"
#include "kpn/timing.hpp"
#include "rtc/calibration.hpp"
#include "rtc/sizing.hpp"

using namespace sccft;

int main() {
  // Ground truth: a producer shaped by <12, 3, 0> ms feeding a FIFO.
  const rtc::PJD truth = rtc::PJD::from_ms(12, 3, 0);

  sim::Simulator simulator;
  kpn::Network net(simulator);
  auto& fifo = net.add_fifo("trace_me", 64);
  fifo.enable_write_trace();

  net.add_process("producer", scc::CoreId{0}, 7,
                  [&](kpn::ProcessContext& ctx) -> sim::Task {
                    kpn::TimingShaper shaper(truth, 0, ctx.rng());
                    for (std::uint64_t k = 0;; ++k) {
                      const rtc::TimeNs t = shaper.next_emission(ctx.now());
                      if (t > ctx.now()) co_await ctx.delay(t - ctx.now());
                      std::vector<std::uint8_t> payload(3, 0xCD);
                      co_await kpn::write(fifo,
                                          kpn::Token(std::move(payload), k, ctx.now()));
                      shaper.commit(ctx.now());
                    }
                  });
  net.add_process("sink", scc::CoreId{2}, 8, [&](kpn::ProcessContext&) -> sim::Task {
    while (true) (void)co_await kpn::read(fifo);
  });
  net.run_until(rtc::from_sec(6.0));

  const auto& trace = fifo.write_trace();
  std::cout << "Recorded " << trace.size() << " token arrivals over 6 s.\n";

  // Fit a conservative PJD model.
  const rtc::PJD fitted = rtc::fit_pjd(trace);
  std::cout << "Ground truth model: " << truth.to_string() << "\n";
  std::cout << "Calibrated model:   " << fitted.to_string() << "\n";

  // Validate: the fitted curves must bound the trace.
  rtc::PJDUpperCurve upper(fitted);
  rtc::PJDLowerCurve lower(fitted);
  const bool conservative = rtc::curves_bound_trace(upper, lower, trace);
  std::cout << "Fitted curves bound the observed trace: "
            << (conservative ? "yes" : "NO") << "\n";

  // Exact trace curves (tightest statement the data supports).
  const auto exact_upper = rtc::trace_upper_curve(trace);
  std::cout << "Burst check at one period: exact upper("
            << rtc::to_ms(truth.period) << " ms) = "
            << exact_upper.value_at(truth.period) << " tokens, fitted eta+ = "
            << upper.value_at(truth.period) << " tokens.\n";

  // Use the calibrated model for sizing, as a designer without a spec would.
  rtc::PJDLowerCurve consumer_lower(fitted);
  const auto capacity =
      rtc::min_fifo_capacity(upper, consumer_lower, rtc::from_sec(3.0));
  std::cout << "FIFO capacity from the calibrated model (Eq. 3, self-paced "
               "consumer): "
            << (capacity ? std::to_string(*capacity) : "unbounded") << " tokens.\n";
  return conservative ? 0 : 1;
}
